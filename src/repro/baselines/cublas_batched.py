"""The ``cublasSgemmBatched`` baseline: fused kernel, same-size only.

cuBLAS's batched API fuses a batch into one kernel but requires every
GEMM to share (M, N, K).  Its tiling is well tuned for the *fused*
launch -- the tile-count check uses the whole batch's tile count -- but
there is no variable-size support and no K-direction batching.
"""

from __future__ import annotations

from repro.core.problem import GemmBatch
from repro.core.tiling import SINGLE_GEMM_STRATEGIES
from repro.baselines.common import _fitting
from repro.gpu.costmodel import BlockWork, TileWork
from repro.gpu.simulator import KernelLaunch, SimulationResult, simulate_kernel
from repro.gpu.specs import DeviceSpec
from repro.telemetry import get_tracer


def simulate_cublas_batched(batch: GemmBatch, device: DeviceSpec) -> SimulationResult:
    """Simulate a same-size batch through the cuBLAS batched API.

    Raises ``ValueError`` for variable-size batches, mirroring the
    API's restriction.
    """
    with get_tracer().span("baseline.cublas_batched", gemms=len(batch)):
        return _simulate_cublas_batched(batch, device)


def _simulate_cublas_batched(batch: GemmBatch, device: DeviceSpec) -> SimulationResult:
    if not batch.is_uniform:
        raise ValueError(
            "cublasSgemmBatched requires all GEMMs to share (M, N, K); "
            "use MAGMA vbatch or the coordinated framework for variable sizes"
        )
    gemm = batch[0]
    # Tile choice accounts for the fused launch: total tiles across the
    # whole batch must fill the machine.
    strategy = None
    for s in _fitting(gemm.m, gemm.n):
        if s.num_tiles(gemm) * len(batch) >= device.num_sms:
            strategy = s
            break
    if strategy is None:
        strategy = _fitting(gemm.m, gemm.n)[-1]

    tile = TileWork(strategy=strategy, k=gemm.k)
    block = BlockWork(
        threads=strategy.threads,
        registers_per_thread=strategy.registers_per_thread,
        shared_memory_bytes=strategy.shared_memory_bytes,
        tiles=(tile,),
    )
    n_blocks = strategy.num_tiles(gemm) * len(batch)
    launch = KernelLaunch(
        name=f"cublas_batched({strategy.name})",
        blocks=(block,) * n_blocks,
        compulsory_ab_bytes=float(batch.compulsory_ab_bytes),
    )
    return simulate_kernel(device, launch)
