"""Per-GEMM tiling *without* the unified thread structure (Figure 3(b)).

The ablation baseline that motivates Table 2's redesign: allow each
GEMM its own tile size, drawn from the single-GEMM table (Table 1,
where thread counts differ per strategy), and fuse everything into one
kernel.  CUDA forces one block size for the whole kernel -- the maximum
over the strategies used -- so blocks running smaller tiles leave
threads idle, and the fused footprint is the maximum over all
strategies.  The cost model charges the idle threads through the
``active_threads`` field of each tile.
"""

from __future__ import annotations

from repro.core.problem import GemmBatch
from repro.core.tiling import SINGLE_GEMM_STRATEGIES, TilingStrategy, select_tiling
from repro.gpu.costmodel import BlockWork, TileWork
from repro.gpu.simulator import KernelLaunch, SimulationResult, simulate_kernel
from repro.gpu.specs import DeviceSpec
from repro.telemetry import get_tracer


def _single_table_equivalent(strategy: TilingStrategy) -> TilingStrategy:
    """Map a batched (Table 2) strategy to its Table 1 namesake."""
    for s in SINGLE_GEMM_STRATEGIES:
        if s.name == strategy.name:
            return s
    raise KeyError(f"no Table 1 strategy named {strategy.name!r}")


def simulate_nonunified(batch: GemmBatch, device: DeviceSpec) -> SimulationResult:
    """Fused kernel with per-GEMM Table 1 tiles and idle threads.

    Uses the same per-GEMM tile *sizes* the coordinated tiling engine
    would choose, but with Table 1's per-strategy thread counts; the
    kernel's block size is the maximum, so smaller-strategy tiles run
    with idle threads.  One tile per block (no K batching).
    """
    with get_tracer().span("baseline.nonunified", gemms=len(batch)):
        return _simulate_nonunified(batch, device)


def _simulate_nonunified(batch: GemmBatch, device: DeviceSpec) -> SimulationResult:
    decision = select_tiling(batch, tlp_threshold=device.tlp_threshold)
    table1 = [_single_table_equivalent(s) for s in decision.strategies]
    block_threads = max(s.threads for s in table1)
    smem = max(s.shared_memory_bytes for s in table1)
    regs = max(s.registers_per_thread for s in table1)

    blocks: list[BlockWork] = []
    for gemm, strat in zip(batch, table1):
        rows, cols = strat.tiles_for(gemm)
        tile = TileWork(strategy=strat, k=gemm.k, active_threads=strat.threads)
        block = BlockWork(
            threads=block_threads,
            registers_per_thread=regs,
            shared_memory_bytes=smem,
            tiles=(tile,),
        )
        blocks.extend([block] * (rows * cols))
    launch = KernelLaunch(
        name="nonunified",
        blocks=tuple(blocks),
        compulsory_ab_bytes=float(batch.compulsory_ab_bytes),
    )
    return simulate_kernel(device, launch)
