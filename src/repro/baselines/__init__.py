"""Baseline batched-GEMM execution strategies (paper Sections 3 and 7).

All baselines run on the same simulator substrate as the framework, so
speedup ratios isolate the algorithmic differences:

* :mod:`repro.baselines.default` -- one kernel per GEMM, serial (the
  artifact's ``default`` directory).
* :mod:`repro.baselines.cke` -- concurrent kernel execution on CUDA
  streams (the artifact's ``cke`` directory).
* :mod:`repro.baselines.cublas_batched` -- ``cublasSgemmBatched``:
  one fused kernel, but only for same-size batches.
* :mod:`repro.baselines.magma_vbatch` -- MAGMA's vbatch: gridDim.z
  expansion over a rectangular grid with bubble blocks, one uniform
  single-GEMM tiling, one tile per block (the paper's primary
  comparison point).
* :mod:`repro.baselines.nonunified` -- per-GEMM tiles *without* the
  unified thread structure (Figure 3(b)): the ablation showing why the
  framework's Table 2 redesign matters.
"""

from repro.baselines.common import (
    select_single_gemm_strategy,
    magma_uniform_strategy,
    gemm_kernel_blocks,
)
from repro.baselines.default import simulate_default
from repro.baselines.cke import simulate_cke
from repro.baselines.cublas_batched import simulate_cublas_batched
from repro.baselines.magma_vbatch import simulate_magma_vbatch, magma_grid
from repro.baselines.nonunified import simulate_nonunified

__all__ = [
    "select_single_gemm_strategy",
    "magma_uniform_strategy",
    "gemm_kernel_blocks",
    "simulate_default",
    "simulate_cke",
    "simulate_cublas_batched",
    "simulate_magma_vbatch",
    "magma_grid",
    "simulate_nonunified",
]
