"""Concurrent kernel execution (CKE) on CUDA streams.

Each GEMM still launches as its own kernel with its own single-GEMM
tiling, but kernels are spread across streams so their blocks may
overlap on the device.  The speedup over the default mode is real but
limited: the host serializes launches, and each small kernel's tiling
is still blind to the batch -- "the concurrent execution relies on
kernel scheduling and the performance speedup is very limited due to
coarse-grained scheduling overhead" (Section 3).
"""

from __future__ import annotations

from repro.core.problem import GemmBatch
from repro.baselines.default import default_kernels
from repro.gpu.simulator import SimulationResult, simulate_streams_concurrent
from repro.gpu.specs import DeviceSpec
from repro.telemetry import get_tracer


def simulate_cke(
    batch: GemmBatch, device: DeviceSpec, launch_gap_us: float = 2.0
) -> SimulationResult:
    """Simulate the batch on concurrent streams.

    ``launch_gap_us`` is the host-side serialization between
    consecutive launches.
    """
    with get_tracer().span("baseline.cke", gemms=len(batch)):
        return simulate_streams_concurrent(
            device, default_kernels(batch, device), launch_gap_us=launch_gap_us
        )
