"""Device specifications for the GPU architectures evaluated in the paper.

The paper evaluates on six NVIDIA GPUs: Volta V100 (the primary
platform), Tesla P100, GTX 1080 Ti, Titan Xp (Pascal), and Tesla M60 and
GTX Titan X (Maxwell).  A :class:`DeviceSpec` captures everything the
occupancy calculator, the cost model, and the tiling/batching algorithms
need to know about a device.

Numbers follow the public CUDA programming guide / vendor datasheets.
The latency and overhead figures are cost-model parameters, chosen so
that the simulated device exhibits the qualitative behaviour the paper
relies on (a huge GEMM approaches peak FLOPS, small kernels are
launch/latency bound).  Absolute cycle counts are not meant to match
silicon; ratios between execution strategies are what the reproduction
preserves (see DESIGN.md section 5).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class DeviceSpec:
    """A GPU device description used by the simulator and the framework.

    Attributes mirror the CUDA hardware model:

    * ``num_sms`` -- number of streaming multiprocessors.
    * ``clock_ghz`` -- SM clock in GHz; converts cycles to seconds.
    * ``fma_lanes_per_sm`` -- FP32 FMA lanes per SM (CUDA "cores").
    * ``tensor_core_fp16_fma_per_sm`` -- FP16 FMA throughput per SM per
      cycle through Tensor Cores (0 on pre-Volta parts); devices
      without Tensor Cores still run FP16 at 2x the FP32 rate (half2
      math).
    * ``registers_per_sm`` -- 32-bit registers per SM.
    * ``max_registers_per_thread`` -- architectural per-thread cap.
    * ``shared_memory_per_sm`` -- bytes of shared memory per SM.
    * ``max_shared_memory_per_block`` -- bytes one block may allocate.
    * ``max_threads_per_sm`` / ``max_blocks_per_sm`` -- residency caps.
    * ``warp_size`` -- threads per warp (32 on all NVIDIA parts).
    * ``warp_schedulers_per_sm`` -- dual-issue scheduler count.
    * ``mem_bandwidth_gbps`` -- device-memory bandwidth in GB/s.
    * ``mem_latency_cycles`` -- global-memory round-trip latency.
    * ``mlp_bytes_per_warp`` -- DRAM bytes one warp keeps in flight on
      average (its memory-level parallelism); with latency L, a warp
      sustains ``mlp_bytes_per_warp / L`` bytes/cycle, so roughly
      ``bandwidth_per_sm * L / mlp_bytes_per_warp`` warps saturate an
      SM's bandwidth share (about 13 on V100 with the default).
    * ``l2_size_bytes`` / ``l2_bandwidth_gbps`` / ``l2_latency_cycles``
      -- the shared L2 cache.  Redundant A/B tile loads of a batch
      whose working set fits in L2 are served from it at L2 bandwidth
      instead of DRAM, which is why small-tile strategies do not pay
      their full nominal traffic on real silicon.
    * ``smem_latency_cycles`` -- shared-memory latency.
    * ``kernel_launch_us`` -- host-side launch latency of one kernel.
    * ``block_dispatch_cycles`` -- GigaThread-engine cost of scheduling
      one block onto an SM (also the cost a *bubble* block pays).
    * ``tlp_threshold`` -- the architecture-dependent TLP threshold of
      the tiling algorithm (Section 4.2.3).  V100 carries the paper's
      published 65536; the other devices carry values produced by
      re-running the paper's offline procedure against this model
      (smallest threshold within 5% of the best validation-workload
      geomean -- see ``repro.gpu.calibration``).
    * ``batching_theta`` -- the K-depth threshold of the batching
      engine (Section 5; 256 on V100).
    """

    name: str
    architecture: str
    num_sms: int
    clock_ghz: float
    fma_lanes_per_sm: int
    tensor_core_fp16_fma_per_sm: int = 0
    registers_per_sm: int = 65536
    max_registers_per_thread: int = 255
    shared_memory_per_sm: int = 96 * 1024
    max_shared_memory_per_block: int = 48 * 1024
    max_threads_per_sm: int = 2048
    max_blocks_per_sm: int = 32
    warp_size: int = 32
    warp_schedulers_per_sm: int = 4
    mem_bandwidth_gbps: float = 900.0
    mem_latency_cycles: int = 400
    mlp_bytes_per_warp: int = 232
    l2_size_bytes: int = 6 * 1024 * 1024
    l2_bandwidth_gbps: float = 2500.0
    l2_latency_cycles: int = 190
    smem_latency_cycles: int = 24
    kernel_launch_us: float = 5.0
    block_dispatch_cycles: int = 300
    tlp_threshold: int = 65536
    batching_theta: int = 256

    def __post_init__(self) -> None:
        if self.num_sms <= 0:
            raise ValueError(f"num_sms must be positive, got {self.num_sms}")
        if self.clock_ghz <= 0:
            raise ValueError(f"clock_ghz must be positive, got {self.clock_ghz}")
        if self.warp_size <= 0:
            raise ValueError(f"warp_size must be positive, got {self.warp_size}")
        if self.mem_bandwidth_gbps <= 0:
            raise ValueError("mem_bandwidth_gbps must be positive")

    @property
    def peak_fp32_tflops(self) -> float:
        """Peak FP32 throughput in TFLOP/s (2 flops per FMA)."""
        return 2.0 * self.num_sms * self.fma_lanes_per_sm * self.clock_ghz / 1e3

    @property
    def fp16_fma_per_sm(self) -> int:
        """FP16 FMA throughput per SM per cycle.

        Tensor Cores where present, otherwise packed half2 math at
        twice the FP32 rate.
        """
        return max(self.tensor_core_fp16_fma_per_sm, 2 * self.fma_lanes_per_sm)

    @property
    def peak_fp16_tflops(self) -> float:
        """Peak FP16 throughput in TFLOP/s (125 on V100's Tensor Cores)."""
        return 2.0 * self.num_sms * self.fp16_fma_per_sm * self.clock_ghz / 1e3

    @property
    def bytes_per_cycle_per_device(self) -> float:
        """Device-memory bytes deliverable per SM clock cycle."""
        return self.mem_bandwidth_gbps / self.clock_ghz

    @property
    def bytes_per_cycle_per_sm(self) -> float:
        """Fair-share memory bytes per cycle for one SM."""
        return self.bytes_per_cycle_per_device / self.num_sms

    def cycles_to_seconds(self, cycles: float) -> float:
        """Convert SM cycles to seconds."""
        return cycles / (self.clock_ghz * 1e9)

    def cycles_to_ms(self, cycles: float) -> float:
        """Convert SM cycles to milliseconds."""
        return self.cycles_to_seconds(cycles) * 1e3

    def to_dict(self) -> dict:
        """Serialize the spec (JSON-compatible), for custom devices."""
        import dataclasses

        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "DeviceSpec":
        """Rebuild a spec serialized by :meth:`to_dict`.

        Unknown keys are rejected so typos in hand-written device files
        fail loudly instead of silently keeping a default.
        """
        import dataclasses

        known = {f.name for f in dataclasses.fields(cls)}
        extra = set(data) - known
        if extra:
            raise ValueError(f"unknown DeviceSpec fields: {sorted(extra)}")
        return cls(**data)


# --- The six devices from the paper's evaluation (Section 7.4). ---

VOLTA_V100 = DeviceSpec(
    name="Tesla V100",
    architecture="volta",
    num_sms=80,
    clock_ghz=1.53,
    fma_lanes_per_sm=64,
    tensor_core_fp16_fma_per_sm=512,
    shared_memory_per_sm=96 * 1024,
    max_shared_memory_per_block=96 * 1024,
    mem_bandwidth_gbps=900.0,
    mem_latency_cycles=400,
    tlp_threshold=65536,
    batching_theta=256,
)

PASCAL_P100 = DeviceSpec(
    name="Tesla P100",
    architecture="pascal",
    num_sms=56,
    clock_ghz=1.48,
    fma_lanes_per_sm=64,
    shared_memory_per_sm=64 * 1024,
    max_shared_memory_per_block=48 * 1024,
    mem_bandwidth_gbps=732.0,
    mem_latency_cycles=440,
    l2_size_bytes=4 * 1024 * 1024,
    l2_bandwidth_gbps=1600.0,
    warp_schedulers_per_sm=2,
    tlp_threshold=98304,
    batching_theta=256,
)

PASCAL_1080TI = DeviceSpec(
    name="GTX 1080 Ti",
    architecture="pascal",
    num_sms=28,
    clock_ghz=1.58,
    fma_lanes_per_sm=128,
    shared_memory_per_sm=96 * 1024,
    max_shared_memory_per_block=48 * 1024,
    mem_bandwidth_gbps=484.0,
    mem_latency_cycles=460,
    l2_size_bytes=2816 * 1024,
    l2_bandwidth_gbps=1300.0,
    tlp_threshold=81920,
    batching_theta=256,
)

PASCAL_TITANXP = DeviceSpec(
    name="Titan Xp",
    architecture="pascal",
    num_sms=30,
    clock_ghz=1.58,
    fma_lanes_per_sm=128,
    shared_memory_per_sm=96 * 1024,
    max_shared_memory_per_block=48 * 1024,
    mem_bandwidth_gbps=547.0,
    mem_latency_cycles=460,
    l2_size_bytes=3 * 1024 * 1024,
    l2_bandwidth_gbps=1400.0,
    tlp_threshold=98304,
    batching_theta=256,
)

MAXWELL_M60 = DeviceSpec(
    name="Tesla M60",
    architecture="maxwell",
    num_sms=16,
    clock_ghz=1.18,
    fma_lanes_per_sm=128,
    shared_memory_per_sm=96 * 1024,
    max_shared_memory_per_block=48 * 1024,
    mem_bandwidth_gbps=160.0,
    mem_latency_cycles=368,
    l2_size_bytes=2 * 1024 * 1024,
    l2_bandwidth_gbps=600.0,
    tlp_threshold=65536,
    batching_theta=192,
)

MAXWELL_TITANX = DeviceSpec(
    name="GTX Titan X",
    architecture="maxwell",
    num_sms=24,
    clock_ghz=1.08,
    fma_lanes_per_sm=128,
    shared_memory_per_sm=96 * 1024,
    max_shared_memory_per_block=48 * 1024,
    mem_bandwidth_gbps=336.0,
    mem_latency_cycles=368,
    l2_size_bytes=3 * 1024 * 1024,
    l2_bandwidth_gbps=800.0,
    tlp_threshold=98304,
    batching_theta=192,
)

_DEVICES = {
    spec.name: spec
    for spec in (
        VOLTA_V100,
        PASCAL_P100,
        PASCAL_1080TI,
        PASCAL_TITANXP,
        MAXWELL_M60,
        MAXWELL_TITANX,
    )
}

# Short aliases accepted by get_device().
_ALIASES = {
    "v100": VOLTA_V100,
    "volta": VOLTA_V100,
    "p100": PASCAL_P100,
    "1080ti": PASCAL_1080TI,
    "gtx1080ti": PASCAL_1080TI,
    "titanxp": PASCAL_TITANXP,
    "m60": MAXWELL_M60,
    "titanx": MAXWELL_TITANX,
    "gtxtitanx": MAXWELL_TITANX,
}


def list_devices() -> list[str]:
    """Names of all devices the reproduction models."""
    return sorted(_DEVICES)


def get_device(name: str) -> DeviceSpec:
    """Look up a device by full name or a short alias (e.g. ``"v100"``).

    Raises :class:`KeyError` with the available names when unknown.
    """
    if name in _DEVICES:
        return _DEVICES[name]
    key = name.lower().replace(" ", "").replace("-", "").replace("_", "")
    if key in _ALIASES:
        return _ALIASES[key]
    raise KeyError(
        f"unknown device {name!r}; available: {list_devices()} "
        f"(aliases: {sorted(_ALIASES)})"
    )
