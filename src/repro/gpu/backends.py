"""Pluggable backend specifications: which strategies a target admits.

The paper's framework is V100-shaped: the twelve Table-2 strategies
are always all candidates, and the only hardware knob is the
:class:`~repro.gpu.specs.DeviceSpec` the cost model prices against.
A :class:`BackendSpec` generalizes the *admission* side: each backend
decides, per (strategy, precision), which of the twelve batched
strategies its hardware can profitably run, and hands the §4 selection
algorithm a filtered candidate pool.  Three models ship:

* :class:`CudaBackend` -- the paper's six NVIDIA devices.  Every
  Table-2 strategy is admissible at every precision (48 KB+ shared
  memory swallows the largest staging tiles at any width), so the
  candidate pools are exactly the published tables and fp32-V100
  planning is bit-identical to the backend-less path.
* :class:`SystolicBackend` -- a TPU-style matrix unit.  A tile maps
  onto an ``array_rows x array_cols`` systolic array in passes;
  utilization is the fraction of PE-cycles doing useful work, which
  collapses for tiles much smaller than the array (a 16x16 tile on a
  128x128 array lights up 1.6% of the PEs).  Strategies below
  ``min_utilization`` are filtered out of the candidate pools.
* :class:`SramBackend` -- a CK-tile-like accelerator with an explicit
  per-block SRAM budget shared by the double-buffered A/B staging
  tiles (at *storage* width) and the FP32 accumulator tile.  Admission
  is dtype-aware: halving the storage width admits strategies whose
  fp32 staging would blow the budget -- the concrete case where
  precision changes the tiling decision.

Backends are orthogonal to precision: ``strategy_pools(precision)``
is the per-(backend, dtype) candidate set the tiling engine consumes
(:func:`repro.core.tiling.select_tiling`), and ``device`` is the
:class:`DeviceSpec` the cycle model prices blocks against.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol, Sequence, runtime_checkable

from repro.core.precision import Precision, PrecisionLike
from repro.core.tiling import (
    BATCHED_STRATEGIES_128,
    BATCHED_STRATEGIES_256,
    TilingStrategy,
)
from repro.gpu.specs import DeviceSpec, VOLTA_V100, get_device

__all__ = [
    "BackendSpec",
    "CudaBackend",
    "SystolicBackend",
    "SramBackend",
    "get_backend",
    "list_backends",
]

#: The two thread-pool variants every backend filters.
_BASE_POOLS = (BATCHED_STRATEGIES_256, BATCHED_STRATEGIES_128)


@runtime_checkable
class BackendSpec(Protocol):
    """What the tiling engine needs to know about a target.

    ``name`` identifies the backend in cache keys and reports;
    ``device`` is the :class:`DeviceSpec` the cycle cost model prices
    against; ``strategy_pools(precision)`` returns the ``(256-thread,
    128-thread)`` candidate pools -- each a filtered, same-ordered
    subset of the Table-2 pools -- for one storage precision;
    ``admits(strategy, precision)`` is the underlying per-strategy
    predicate.
    """

    @property
    def name(self) -> str: ...

    @property
    def device(self) -> DeviceSpec: ...

    def admits(self, strategy: TilingStrategy, precision: PrecisionLike) -> bool:
        """Whether the target can run ``strategy`` at ``precision``."""
        ...

    def strategy_pools(
        self, precision: PrecisionLike
    ) -> tuple[tuple[TilingStrategy, ...], tuple[TilingStrategy, ...]]:
        """The filtered ``(256-thread, 128-thread)`` candidate pools."""
        ...


def _filtered_pools(
    backend: "BackendSpec", precision: Precision
) -> tuple[tuple[TilingStrategy, ...], tuple[TilingStrategy, ...]]:
    """Apply a backend's admission predicate to both Table-2 pools.

    A pool never filters down to nothing: the framework guarantee that
    every GEMM has at least one candidate survives any backend, so an
    over-restrictive model degrades plan quality, not planability.
    The fallback is the admissible-on-no-count strategy closest to
    admission (largest utilization / smallest footprint is equivalent
    to "first by the backend's own preference"), here simply the
    smallest tile -- matching :func:`available_strategies`' fallback.
    """
    pools = []
    for base in _BASE_POOLS:
        kept = tuple(s for s in base if backend.admits(s, precision))
        if not kept:
            kept = (min(base, key=lambda s: s.tile_elems),)
        pools.append(kept)
    return tuple(pools)


@dataclass(frozen=True)
class CudaBackend:
    """One of the paper's NVIDIA devices, as a backend.

    Admission is unconditional: every Table-2 strategy's staging
    footprint fits CUDA shared memory at fp32 width and below, so the
    candidate pools are exactly the published tables at every
    precision -- which keeps fp32-V100 planning bit-identical to the
    pre-backend code path.
    """

    spec: DeviceSpec = VOLTA_V100

    @property
    def name(self) -> str:
        return f"cuda:{self.spec.name}"

    @property
    def device(self) -> DeviceSpec:
        return self.spec

    def admits(self, strategy: TilingStrategy, precision: PrecisionLike) -> bool:
        """Whether the staging tiles fit the device's per-block shared memory."""
        prec = Precision.coerce(precision)
        return (
            strategy.smem_footprint(prec.storage_bytes)
            <= self.spec.max_shared_memory_per_block
        )

    def strategy_pools(
        self, precision: PrecisionLike
    ) -> tuple[tuple[TilingStrategy, ...], tuple[TilingStrategy, ...]]:
        """The Table-2 pools (identical tuples when everything fits)."""
        prec = Precision.coerce(precision)
        if all(
            self.admits(s, prec) for pool in _BASE_POOLS for s in pool
        ):  # the always-true fast path on the shipped devices
            return _BASE_POOLS
        return _filtered_pools(self, prec)

    def to_dict(self) -> dict:
        """JSON-compatible description (manifests, health endpoints)."""
        return {"kind": "cuda", "device": self.spec.name}


#: The device-model stand-in a systolic part prices against: one big
#: matrix unit per "SM", modest core count, HBM-class bandwidth.  The
#: cycle numbers keep the same qualitative regimes as the GPU specs
#: (bandwidth-bound small tiles, compute-bound huge ones); absolute
#: cycles are not calibrated against any real TPU.
SYSTOLIC_DEVICE = DeviceSpec(
    name="Systolic-128x128",
    architecture="systolic",
    num_sms=8,
    clock_ghz=0.94,
    fma_lanes_per_sm=4096,
    tensor_core_fp16_fma_per_sm=16384,
    shared_memory_per_sm=24 * 1024 * 1024,
    max_shared_memory_per_block=24 * 1024 * 1024,
    mem_bandwidth_gbps=1200.0,
    mem_latency_cycles=500,
    tlp_threshold=65536,
    batching_theta=256,
)


@dataclass(frozen=True)
class SystolicBackend:
    """A TPU-style systolic-array model: admission by utilization.

    A ``BY x BX`` output tile executes on the ``array_rows x
    array_cols`` PE grid in ``ceil(BY/rows) * ceil(BX/cols)`` passes;
    every pass occupies the whole array for its full duration, so

        utilization = (BY * BX) / (passes * rows * cols)

    is the fraction of PE-cycles doing useful work -- at most 1 (an
    aligned tile), collapsing quadratically for small tiles.  Pools
    keep only strategies with ``utilization >= min_utilization``; the
    default 0.25 admits {large, tall, wide, huge} on the 128x128
    array, which matches the published TPU guidance of keeping matmul
    dimensions at or above the array size.
    """

    array_rows: int = 128
    array_cols: int = 128
    min_utilization: float = 0.25
    spec: DeviceSpec = SYSTOLIC_DEVICE

    def __post_init__(self) -> None:
        if self.array_rows <= 0 or self.array_cols <= 0:
            raise ValueError("systolic array dimensions must be positive")
        if not 0.0 < self.min_utilization <= 1.0:
            raise ValueError(
                f"min_utilization must be in (0, 1], got {self.min_utilization}"
            )

    @property
    def name(self) -> str:
        return f"systolic:{self.array_rows}x{self.array_cols}"

    @property
    def device(self) -> DeviceSpec:
        return self.spec

    def utilization(self, strategy: TilingStrategy) -> float:
        """PE utilization of one tile on the array (0 < u <= 1)."""
        passes = -(-strategy.by // self.array_rows) * -(-strategy.bx // self.array_cols)
        return (strategy.by * strategy.bx) / (
            passes * self.array_rows * self.array_cols
        )

    def admits(self, strategy: TilingStrategy, precision: PrecisionLike) -> bool:
        """Whether the tile keeps the PE array usefully busy."""
        Precision.coerce(precision)  # validate; utilization is dtype-free
        return self.utilization(strategy) >= self.min_utilization

    def strategy_pools(
        self, precision: PrecisionLike
    ) -> tuple[tuple[TilingStrategy, ...], tuple[TilingStrategy, ...]]:
        """The utilization-filtered candidate pools."""
        return _filtered_pools(self, Precision.coerce(precision))

    def to_dict(self) -> dict:
        """JSON-compatible description (manifests, health endpoints)."""
        return {
            "kind": "systolic",
            "array": [self.array_rows, self.array_cols],
            "min_utilization": self.min_utilization,
        }


#: Device-model stand-in for the SRAM-budgeted part: CDNA-like core
#: counts with the LDS-sized budget mirrored into the block cap.
SRAM_DEVICE = DeviceSpec(
    name="SRAM-40K",
    architecture="sram-tile",
    num_sms=64,
    clock_ghz=1.7,
    fma_lanes_per_sm=128,
    shared_memory_per_sm=64 * 1024,
    max_shared_memory_per_block=64 * 1024,
    mem_bandwidth_gbps=1600.0,
    mem_latency_cycles=420,
    tlp_threshold=65536,
    batching_theta=256,
)


@dataclass(frozen=True)
class SramBackend:
    """A CK-tile-like accelerator: admission by per-block SRAM budget.

    The budget is shared by the double-buffered A/B staging tiles *at
    storage width* and the FP32 accumulator tile (mixed-precision
    hardware accumulates wide regardless of storage):

        footprint = 2*(BY*BK + BK*BX)*storage_bytes + BY*BX*4

    With the default 40 KB budget the fp32 pool is {small, medium,
    large}; at fp16/bf16 the halved staging admits {tall, wide} too
    (huge's 64 KB accumulator alone exceeds the budget at any storage
    width).  This is the backend where precision visibly changes the
    tiling decision.
    """

    sram_budget_bytes: int = 40 * 1024
    accumulator_bytes: int = 4
    spec: DeviceSpec = SRAM_DEVICE

    def __post_init__(self) -> None:
        if self.sram_budget_bytes <= 0:
            raise ValueError("sram_budget_bytes must be positive")
        if self.accumulator_bytes <= 0:
            raise ValueError("accumulator_bytes must be positive")

    @property
    def name(self) -> str:
        return f"sram:{self.sram_budget_bytes // 1024}k"

    @property
    def device(self) -> DeviceSpec:
        return self.spec

    def tile_footprint_bytes(
        self, strategy: TilingStrategy, precision: PrecisionLike
    ) -> int:
        """SRAM bytes one block needs: staging at storage width + FP32 accumulator."""
        prec = Precision.coerce(precision)
        staging = strategy.smem_footprint(prec.storage_bytes)
        accumulator = strategy.by * strategy.bx * self.accumulator_bytes
        return staging + accumulator

    def admits(self, strategy: TilingStrategy, precision: PrecisionLike) -> bool:
        """Whether staging + accumulator fit the per-block SRAM budget."""
        return self.tile_footprint_bytes(strategy, precision) <= self.sram_budget_bytes

    def strategy_pools(
        self, precision: PrecisionLike
    ) -> tuple[tuple[TilingStrategy, ...], tuple[TilingStrategy, ...]]:
        """The budget-filtered candidate pools (dtype-aware)."""
        return _filtered_pools(self, Precision.coerce(precision))

    def to_dict(self) -> dict:
        """JSON-compatible description (manifests, health endpoints)."""
        return {
            "kind": "sram",
            "sram_budget_bytes": self.sram_budget_bytes,
            "accumulator_bytes": self.accumulator_bytes,
        }


def list_backends() -> list[str]:
    """The spellings :func:`get_backend` accepts (aliases included)."""
    return ["cuda", "cuda:<device>", "systolic", "tpu", "sram", "cktile"]


def get_backend(name) -> BackendSpec:
    """Resolve a backend spelling (or pass a spec through).

    * ``"cuda"`` -- :class:`CudaBackend` on the default V100;
      ``"cuda:<device>"`` accepts any :func:`~repro.gpu.specs.get_device`
      name or alias (``"cuda:p100"``, ``"cuda:titanxp"``, ...).
    * ``"systolic"`` / ``"tpu"`` -- the default 128x128
      :class:`SystolicBackend`.
    * ``"sram"`` / ``"cktile"`` -- the default 40 KB
      :class:`SramBackend`.

    An existing :class:`BackendSpec` is returned unchanged, so every
    surface can accept either spelling.  Unknown names raise
    :class:`KeyError`.
    """
    if isinstance(name, (CudaBackend, SystolicBackend, SramBackend)):
        return name
    if not isinstance(name, str):
        if isinstance(name, BackendSpec):
            return name
        raise TypeError(
            f"backend must be a BackendSpec or str, got {type(name).__name__}"
        )
    key = name.strip()
    kind, _, arg = key.partition(":")
    kind = kind.lower()
    arg = arg.strip()
    if kind == "cuda":
        return CudaBackend(get_device(arg)) if arg else CudaBackend()
    if kind in ("systolic", "tpu"):
        if not arg:
            return SystolicBackend()
        rows, _, cols = arg.lower().partition("x")
        try:
            return SystolicBackend(array_rows=int(rows), array_cols=int(cols))
        except ValueError:
            raise KeyError(
                f"bad systolic spelling {name!r}; expected 'systolic:<rows>x<cols>'"
            ) from None
    if kind in ("sram", "cktile"):
        if not arg:
            return SramBackend()
        try:
            kib = int(arg.lower().rstrip("k"))
        except ValueError:
            raise KeyError(
                f"bad sram spelling {name!r}; expected 'sram:<kibibytes>k'"
            ) from None
        return SramBackend(sram_budget_bytes=kib * 1024)
    raise KeyError(
        f"unknown backend {name!r}; available: {list_backends()}"
    )
