"""CUDA occupancy calculation.

How many thread blocks of a given resource footprint can be resident on
one SM simultaneously?  Residency is the minimum over four architectural
limits: registers, shared memory, threads, and block slots.  The answer
feeds the cost model's latency-hiding term (more resident warps hide
more memory latency) and its bandwidth-sharing term.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.gpu.specs import DeviceSpec


@dataclass(frozen=True)
class OccupancyResult:
    """Residency of one block shape on one SM.

    ``blocks_per_sm`` is the headline number.  The ``limited_by`` field
    names the binding constraint, which the ablation benchmarks use to
    explain *why* a tiling strategy saturates.
    """

    blocks_per_sm: int
    warps_per_sm: int
    threads_per_sm: int
    limited_by: str
    register_limit: int
    shared_memory_limit: int
    thread_limit: int
    block_slot_limit: int

    @property
    def occupancy_fraction(self) -> float:
        """Resident threads as a fraction of the device maximum (0 if none)."""
        return self.threads_per_sm / self._max_threads if self._max_threads else 0.0

    # Stashed by occupancy(); frozen dataclass workaround via object.__setattr__.
    _max_threads: int = 0


def occupancy(
    device: DeviceSpec,
    threads_per_block: int,
    registers_per_thread: int,
    shared_memory_per_block: int,
) -> OccupancyResult:
    """Compute how many blocks of the given shape fit on one SM.

    Parameters
    ----------
    device:
        The target device specification.
    threads_per_block:
        Number of threads in the block (must be a positive multiple of
        nothing in particular -- partial warps round up to whole warps).
    registers_per_thread:
        32-bit registers each thread uses.  Values above the
        architectural cap raise ``ValueError`` (real compilers spill; the
        kernels modeled here never exceed the cap).
    shared_memory_per_block:
        Bytes of shared memory the block allocates.

    Returns
    -------
    OccupancyResult
        With ``blocks_per_sm == 0`` when a single block exceeds an SM's
        resources (an unlaunchable configuration).
    """
    if threads_per_block <= 0:
        raise ValueError(f"threads_per_block must be positive, got {threads_per_block}")
    if registers_per_thread <= 0:
        raise ValueError(f"registers_per_thread must be positive, got {registers_per_thread}")
    if registers_per_thread > device.max_registers_per_thread:
        raise ValueError(
            f"registers_per_thread={registers_per_thread} exceeds the device cap "
            f"of {device.max_registers_per_thread}"
        )
    if shared_memory_per_block < 0:
        raise ValueError("shared_memory_per_block must be non-negative")
    if shared_memory_per_block > device.max_shared_memory_per_block:
        # One block asking for more shared memory than the per-block cap
        # can never launch.
        return _zero_result(device, limited_by="shared_memory")

    warps_per_block = -(-threads_per_block // device.warp_size)
    # Register allocation granularity: whole warps.
    regs_per_block = warps_per_block * device.warp_size * registers_per_thread

    register_limit = device.registers_per_sm // regs_per_block if regs_per_block else device.max_blocks_per_sm
    if shared_memory_per_block > 0:
        shared_limit = device.shared_memory_per_sm // shared_memory_per_block
    else:
        # No shared memory requested: cannot be the binding constraint.
        shared_limit = device.max_blocks_per_sm + 1
    thread_limit = device.max_threads_per_sm // (warps_per_block * device.warp_size)
    slot_limit = device.max_blocks_per_sm

    limits = {
        "registers": register_limit,
        "shared_memory": shared_limit,
        "threads": thread_limit,
        "block_slots": slot_limit,
    }
    blocks = min(limits.values())
    if blocks <= 0:
        binding = min(limits, key=limits.get)  # type: ignore[arg-type]
        return _zero_result(device, limited_by=binding)

    binding = min(limits, key=limits.get)  # type: ignore[arg-type]
    result = OccupancyResult(
        blocks_per_sm=blocks,
        warps_per_sm=blocks * warps_per_block,
        threads_per_sm=blocks * warps_per_block * device.warp_size,
        limited_by=binding,
        register_limit=register_limit,
        shared_memory_limit=shared_limit,
        thread_limit=thread_limit,
        block_slot_limit=slot_limit,
    )
    object.__setattr__(result, "_max_threads", device.max_threads_per_sm)
    return result


def _zero_result(device: DeviceSpec, limited_by: str) -> OccupancyResult:
    result = OccupancyResult(
        blocks_per_sm=0,
        warps_per_sm=0,
        threads_per_sm=0,
        limited_by=limited_by,
        register_limit=0,
        shared_memory_limit=0,
        thread_limit=0,
        block_slot_limit=device.max_blocks_per_sm,
    )
    object.__setattr__(result, "_max_threads", device.max_threads_per_sm)
    return result
