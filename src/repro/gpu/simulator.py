"""Wave-based kernel execution simulator.

Given the thread blocks of one kernel launch, the simulator:

1. computes the kernel's occupancy from its (uniform) resource
   footprint -- how many blocks one SM can hold;
2. estimates the *effective concurrency* of the launch by fixed-point
   iteration: block durations depend on the bandwidth share, which
   depends on how many blocks run at once, which depends on the
   durations.  Three or four rounds converge for every launch shape,
   including badly imbalanced ones (a few monster blocks next to many
   minnows);
3. prices every block with :func:`repro.gpu.costmodel.block_cycles`;
4. list-schedules blocks onto SM residency slots in issue order (the
   GigaThread engine's behaviour) and reports the makespan.

``simulate_stream_serial`` strings kernels together back-to-back with
host launch gaps (the default one-kernel-per-GEMM execution mode);
``simulate_streams_concurrent`` overlaps kernels the way the CUDA
stream interface does, with a per-launch host-side serialization gap
(the "coarse-grained scheduling overhead" the paper cites for CKE).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Any, Sequence

from repro.gpu.costmodel import BlockWork, SmContext, block_cycles, l2_hit_fraction
from repro.gpu.occupancy import occupancy
from repro.gpu.specs import DeviceSpec
from repro.telemetry import get_tracer

#: Fixed-point rounds for the concurrency estimate.
_CONCURRENCY_ROUNDS = 4


@dataclass(frozen=True)
class KernelLaunch:
    """One kernel: a name plus the blocks it launches.

    The resource footprint for occupancy is taken from the first
    block; a real CUDA kernel has a single static footprint, so all
    blocks of a launch must share ``threads``, ``registers_per_thread``
    and ``shared_memory_bytes`` (validated).

    ``compulsory_ab_bytes`` is the unique A/B operand footprint of the
    workload (bytes each matrix contributes once); when provided, the
    L2 cache serves the redundant fraction of tile traffic.  ``None``
    disables L2 credit (used by micro-probes).
    """

    name: str
    blocks: tuple[BlockWork, ...]
    compulsory_ab_bytes: float | None = None

    def __post_init__(self) -> None:
        if not self.blocks:
            raise ValueError(f"kernel {self.name!r} launches no blocks")
        first = self.blocks[0]
        for b in self.blocks:
            if (
                b.threads != first.threads
                or b.registers_per_thread != first.registers_per_thread
                or b.shared_memory_bytes != first.shared_memory_bytes
            ):
                raise ValueError(
                    f"kernel {self.name!r} mixes block footprints: a CUDA kernel "
                    "has one static resource footprint for every block"
                )


@dataclass(frozen=True)
class SimulationResult:
    """Outcome of simulating one kernel (or a whole sequence).

    ``cycles`` excludes host launch latency; ``time_ms`` includes it
    when the simulation entry point charges one.  ``concurrency`` is
    the converged estimate of blocks running at once; ``waves`` is the
    block count over the slot count.

    ``trace`` is the telemetry span recorded while simulating (a
    :class:`repro.telemetry.Span` subtree) when a recording tracer was
    installed, else ``None``.  It is excluded from equality so results
    compare by their numbers alone.
    """

    name: str
    cycles: float
    time_ms: float
    num_blocks: int
    blocks_per_sm: int
    concurrency: float
    active_sms: int
    waves: float
    limited_by: str
    trace: Any = field(default=None, compare=False)

    @property
    def time_us(self) -> float:
        return self.time_ms * 1e3


def _schedule(durations: Sequence[float], slots: int) -> float:
    """List-schedule durations onto ``slots`` servers; return makespan."""
    heap = [0.0] * slots
    heapq.heapify(heap)
    makespan = 0.0
    for d in durations:
        start = heapq.heappop(heap)
        end = start + d
        makespan = max(makespan, end)
        heapq.heappush(heap, end)
    return makespan


def _converge_kernel(
    device: DeviceSpec,
    blocks: Sequence[BlockWork],
    blocks_per_sm: int,
    compulsory_ab_bytes: float | None = None,
) -> tuple[list[float], float, float, SmContext]:
    """Fixed-point estimate of (durations, makespan, concurrency, ctx)."""
    n = len(blocks)
    slots = device.num_sms * blocks_per_sm
    concurrency = float(min(slots, n))
    traffic_ab = float(
        sum(t.bytes_per_iteration * t.n_iterations for b in blocks for t in b.tiles)
    )
    hit = l2_hit_fraction(device, compulsory_ab_bytes, traffic_ab)
    l2_total = device.l2_bandwidth_gbps / device.clock_ghz
    durations: list[float] = []
    makespan = 0.0
    ctx = SmContext(resident_blocks=1, bw_bytes_per_cycle=device.bytes_per_cycle_per_device)
    for _ in range(_CONCURRENCY_ROUNDS):
        resident = max(1, min(blocks_per_sm, round(concurrency / device.num_sms + 0.499)))
        ctx = SmContext(
            resident_blocks=resident,
            bw_bytes_per_cycle=device.bytes_per_cycle_per_device / max(1.0, concurrency),
            l2_bw_bytes_per_cycle=l2_total / max(1.0, concurrency),
            l2_hit_fraction=hit,
        )
        durations = [block_cycles(device, b, ctx) for b in blocks]
        makespan = _schedule(durations, slots)
        if makespan <= 0:
            break
        new_concurrency = min(float(slots), max(1.0, sum(durations) / makespan))
        if abs(new_concurrency - concurrency) < 0.5:
            concurrency = new_concurrency
            break
        concurrency = new_concurrency
    return durations, makespan, concurrency, ctx


def simulate_kernel(
    device: DeviceSpec,
    kernel: KernelLaunch,
    include_launch_overhead: bool = True,
) -> SimulationResult:
    """Simulate one kernel launch and return its execution time.

    Raises ``ValueError`` for an unlaunchable footprint (zero
    occupancy), mirroring a CUDA launch failure.
    """
    tracer = get_tracer()
    with tracer.span(
        "simulate.kernel", kernel=kernel.name, blocks=len(kernel.blocks)
    ) as span:
        first = kernel.blocks[0]
        occ = occupancy(
            device,
            threads_per_block=first.threads,
            registers_per_thread=first.registers_per_thread,
            shared_memory_per_block=first.shared_memory_bytes,
        )
        if occ.blocks_per_sm == 0:
            raise ValueError(
                f"kernel {kernel.name!r} cannot launch: footprint exceeds one SM "
                f"(limited by {occ.limited_by})"
            )

        _durations, makespan, concurrency, ctx = _converge_kernel(
            device, kernel.blocks, occ.blocks_per_sm, kernel.compulsory_ab_bytes
        )
        launch_cycles = device.kernel_launch_us * 1e-6 * device.clock_ghz * 1e9
        total_cycles = makespan + (launch_cycles if include_launch_overhead else 0.0)
        slots = device.num_sms * occ.blocks_per_sm
        result = SimulationResult(
            name=kernel.name,
            cycles=makespan,
            time_ms=device.cycles_to_ms(total_cycles),
            num_blocks=len(kernel.blocks),
            blocks_per_sm=occ.blocks_per_sm,
            concurrency=concurrency,
            active_sms=min(device.num_sms, len(kernel.blocks)),
            waves=len(kernel.blocks) / slots,
            limited_by=occ.limited_by,
            trace=span if span.enabled else None,
        )
        if span.enabled:
            span.set_attr("waves", result.waves)
            span.set_attr("concurrency", result.concurrency)
            span.set_attr("time_ms", result.time_ms)
            tracer.gauge("waves", result.waves)
            tracer.counter("kernels_simulated")
    return result


def simulate_stream_serial(
    device: DeviceSpec, kernels: Sequence[KernelLaunch]
) -> SimulationResult:
    """Back-to-back execution of a kernel sequence (the default mode).

    Each kernel pays the full host launch latency before its blocks
    start; nothing overlaps.
    """
    if not kernels:
        raise ValueError("no kernels to simulate")
    with get_tracer().span("simulate.serial", kernels=len(kernels)) as span:
        total_ms = 0.0
        total_cycles = 0.0
        total_blocks = 0
        for k in kernels:
            r = simulate_kernel(device, k, include_launch_overhead=True)
            total_ms += r.time_ms
            total_cycles += r.cycles
            total_blocks += r.num_blocks
        return SimulationResult(
            name=f"serial[{len(kernels)} kernels]",
            cycles=total_cycles,
            time_ms=total_ms,
            num_blocks=total_blocks,
            blocks_per_sm=0,
            concurrency=1.0,
            active_sms=device.num_sms,
            waves=0.0,
            limited_by="serialization",
            trace=span if span.enabled else None,
        )


def simulate_streams_concurrent(
    device: DeviceSpec,
    kernels: Sequence[KernelLaunch],
    launch_gap_us: float = 2.0,
) -> SimulationResult:
    """Concurrent kernel execution on streams (the CKE baseline).

    The host serializes launches ``launch_gap_us`` apart; on the
    device, blocks of different kernels may co-reside.  Each kernel is
    priced under its own converged context, then all blocks are
    list-scheduled onto a shared slot pool no earlier than their
    kernel's launch time.  The coarse-grained overheads the paper
    cites for CKE (launch serialization, per-kernel residual tails)
    emerge from the schedule.
    """
    if not kernels:
        raise ValueError("no kernels to simulate")
    gap_cycles = launch_gap_us * 1e-6 * device.clock_ghz * 1e9

    with get_tracer().span("simulate.streams", kernels=len(kernels)) as span:
        jobs: list[tuple[float, float]] = []  # (release_cycle, duration)
        slot_candidates: list[int] = []
        for i, k in enumerate(kernels):
            first = k.blocks[0]
            occ = occupancy(
                device, first.threads, first.registers_per_thread, first.shared_memory_bytes
            )
            if occ.blocks_per_sm == 0:
                raise ValueError(f"kernel {k.name!r} cannot launch")
            durations, _m, _c, _ctx = _converge_kernel(
                device, k.blocks, occ.blocks_per_sm, k.compulsory_ab_bytes
            )
            release = (i + 1) * gap_cycles
            jobs.extend((release, d) for d in durations)
            slot_candidates.append(occ.blocks_per_sm)

        # Shared residency pool sized by the most restrictive kernel.
        slots = device.num_sms * max(1, min(slot_candidates))
        heap = [0.0] * slots
        heapq.heapify(heap)
        makespan = 0.0
        for release, d in jobs:  # issue order = launch order
            start = max(heapq.heappop(heap), release)
            end = start + d
            makespan = max(makespan, end)
            heapq.heappush(heap, end)

        return SimulationResult(
            name=f"streams[{len(kernels)} kernels]",
            cycles=makespan,
            time_ms=device.cycles_to_ms(makespan),
            num_blocks=len(jobs),
            blocks_per_sm=min(slot_candidates),
            concurrency=float(slots),
            active_sms=device.num_sms,
            waves=len(jobs) / slots,
            limited_by="streams",
            trace=span if span.enabled else None,
        )
