"""Discrete-event kernel simulator (cross-check for the fixed point).

The production simulator (:mod:`repro.gpu.simulator`) prices every
block under one *converged average* context -- fast, but an
approximation when the launch is imbalanced (bandwidth shares really
change as blocks retire).  This module simulates the same launch as a
discrete-event system: blocks occupy SM slots, and whenever the set of
running blocks changes, the remaining work of every running block is
re-priced under the *current* contention.

It is O(events x running-blocks), so it is used for validation and
diagnostics rather than inside the planning loop.  The test suite
checks the two simulators agree within a tolerance across workload
shapes; large disagreement on a new workload is the signal to revisit
the fixed point's assumptions.

Model per block: total work is summarized as (FMA cycles at full
lanes, DRAM bytes, L2 bytes, issue cycles, serial overhead).  At any
instant a block progresses at a rate set by its most contended
resource, with device bandwidth divided among runners (capped by each
block's MLP ceiling) and SM lanes/issue divided among blocks resident
on the same SM.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Sequence

from repro.gpu.costmodel import (
    EPILOGUE_CONST_CYCLES,
    PIPELINE_FILL_ITERS,
    TILE_SWITCH_CYCLES,
    BlockWork,
    l2_hit_fraction,
)
from repro.gpu.occupancy import occupancy
from repro.gpu.specs import DeviceSpec

#: Relative progress step per event round (numerical guard).
_EPS = 1e-9


@dataclass
class _RunState:
    """Mutable execution state of one running block."""

    index: int
    sm: int
    # Remaining demands, all in "cycles at exclusive use" except bytes.
    fma_cycles: float
    dram_bytes: float
    l2_bytes: float
    issue_cycles: float
    serial_cycles: float
    little_bw: float
    little_l2_bw: float
    warps: int


def _summarize(device: DeviceSpec, block: BlockWork, hit: float) -> _RunState:
    """Collapse a block's tiles into aggregate resource demands."""
    fma = 0.0
    dram = 0.0
    l2 = 0.0
    issue = 0.0
    serial = float(device.block_dispatch_cycles)
    little = 0.0
    little_l2 = 0.0
    warps = 0
    for i, tile in enumerate(block.tiles):
        n = tile.n_iterations
        lanes = (
            device.fp16_fma_per_sm
            if tile.precision == "fp16"
            else device.fma_lanes_per_sm
        )
        fma += n * tile.fmas_per_iteration / lanes
        dram += (1.0 - hit) * n * tile.bytes_per_iteration + tile.epilogue_bytes
        l2 += hit * n * tile.bytes_per_iteration
        issue += (
            n
            * tile.active_warps
            * tile.insts_per_thread_per_iteration
            / device.warp_schedulers_per_sm
        )
        if i == 0:
            # Fill: one exposed round trip plus the pipeline ramp,
            # charged as serial time (approximating the cost model's
            # PIPELINE_FILL_ITERS x AB-only iteration).
            serial += device.mem_latency_cycles
            serial += PIPELINE_FILL_ITERS * (
                tile.bytes_per_iteration / max(tile.little_bw_bytes_per_cycle(device), _EPS)
                if tile.bytes_per_iteration
                else 0.0
            )
        else:
            serial += TILE_SWITCH_CYCLES
        serial += EPILOGUE_CONST_CYCLES
        little = max(little, tile.little_bw_bytes_per_cycle(device))
        little_l2 = max(
            little_l2,
            tile.little_bw_bytes_per_cycle(device)
            * device.mem_latency_cycles
            / device.l2_latency_cycles,
        )
        warps = max(warps, tile.active_warps)
    return _RunState(
        index=-1,
        sm=-1,
        fma_cycles=fma,
        dram_bytes=dram,
        l2_bytes=l2,
        issue_cycles=issue,
        serial_cycles=serial,
        little_bw=max(little, _EPS),
        little_l2_bw=max(little_l2, _EPS),
        warps=warps,
    )


def _finish_time(state: _RunState, dram_share: float, l2_share: float, sm_blocks: int) -> float:
    """Remaining wall time of a block under current contention.

    The block's streams progress concurrently; the slowest bounds it.
    Serial overhead adds on top (it overlaps with nothing of its own).
    """
    dram_bw = min(dram_share, state.little_bw)
    l2_bw = min(l2_share, state.little_l2_bw)
    times = [
        state.fma_cycles * sm_blocks,
        state.issue_cycles * sm_blocks,
        state.dram_bytes / dram_bw,
        state.l2_bytes / l2_bw,
    ]
    return max(times) + state.serial_cycles


def _drain(state: _RunState, dt: float, dram_share: float, l2_share: float, sm_blocks: int) -> None:
    """Advance a block's state by ``dt`` wall cycles."""
    total = _finish_time(state, dram_share, l2_share, sm_blocks)
    if total <= 0:
        return
    frac = min(1.0, dt / total)
    state.fma_cycles *= 1.0 - frac
    state.dram_bytes *= 1.0 - frac
    state.l2_bytes *= 1.0 - frac
    state.issue_cycles *= 1.0 - frac
    state.serial_cycles *= 1.0 - frac


def simulate_kernel_events(
    device: DeviceSpec,
    blocks: Sequence[BlockWork],
    blocks_per_sm: int | None = None,
    compulsory_ab_bytes: float | None = None,
) -> float:
    """Event-driven makespan (cycles) of a launch.

    Blocks are dispatched in issue order to the SM with the most free
    slots; whenever a block finishes, shares are recomputed and every
    running block is advanced.  Returns the makespan in cycles.
    """
    if not blocks:
        raise ValueError("no blocks to simulate")
    first = blocks[0]
    if blocks_per_sm is None:
        occ = occupancy(
            device, first.threads, first.registers_per_thread, first.shared_memory_bytes
        )
        if occ.blocks_per_sm == 0:
            raise ValueError("unlaunchable footprint")
        blocks_per_sm = occ.blocks_per_sm

    traffic_ab = float(
        sum(t.bytes_per_iteration * t.n_iterations for b in blocks for t in b.tiles)
    )
    hit = l2_hit_fraction(device, compulsory_ab_bytes, traffic_ab)

    pending = list(range(len(blocks)))
    pending.reverse()  # pop() dispatches in issue order
    sm_load = [0] * device.num_sms
    running: list[_RunState] = []
    now = 0.0
    total_l2_bw = device.l2_bandwidth_gbps / device.clock_ghz

    def dispatch() -> None:
        while pending:
            sm = min(range(device.num_sms), key=lambda i: sm_load[i])
            if sm_load[sm] >= blocks_per_sm:
                break
            idx = pending.pop()
            state = _summarize(device, blocks[idx], hit)
            state.index = idx
            state.sm = sm
            sm_load[sm] += 1
            running.append(state)

    dispatch()
    guard = 0
    max_events = 4 * len(blocks) + 16
    while running:
        guard += 1
        if guard > max_events:
            raise RuntimeError("event simulation failed to converge")
        n_running = len(running)
        dram_share = device.bytes_per_cycle_per_device / n_running
        l2_share = total_l2_bw / n_running
        finish = [
            _finish_time(s, dram_share, l2_share, sm_load[s.sm]) for s in running
        ]
        dt = max(min(finish), _EPS)
        now += dt
        survivors = []
        for s, f in zip(running, finish):
            if f <= dt * (1.0 + _EPS):
                sm_load[s.sm] -= 1
            else:
                _drain(s, dt, dram_share, l2_share, sm_load[s.sm])
                survivors.append(s)
        running = survivors
        dispatch()
    return now
