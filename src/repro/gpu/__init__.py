"""GPU execution substrate: device specs, occupancy, cost model, simulator.

This subpackage replaces the physical GPUs used in the paper (NVIDIA
Volta V100, three Pascal parts, and two Maxwell parts) with an
analytical execution model.  It provides:

* :mod:`repro.gpu.specs` -- per-architecture device descriptions,
* :mod:`repro.gpu.occupancy` -- the CUDA occupancy calculation
  (resident blocks per SM limited by registers, shared memory,
  threads, and the block slot count),
* :mod:`repro.gpu.costmodel` -- a per-thread-block cycle cost model
  capturing the mechanisms the paper's framework exploits (TLP-driven
  latency hiding, ILP-driven pipeline fill, idle-thread waste, bubble
  blocks),
* :mod:`repro.gpu.simulator` -- a wave-based scheduler that places
  blocks onto SMs and returns kernel execution time,
* :mod:`repro.gpu.calibration` -- the offline TLP-threshold procedure
  described in Section 4.2.3 of the paper.
"""

from repro.gpu.specs import (
    DeviceSpec,
    get_device,
    list_devices,
    VOLTA_V100,
    PASCAL_P100,
    PASCAL_1080TI,
    PASCAL_TITANXP,
    MAXWELL_M60,
    MAXWELL_TITANX,
)
from repro.gpu.backends import (
    BackendSpec,
    CudaBackend,
    SramBackend,
    SystolicBackend,
    get_backend,
    list_backends,
)
from repro.gpu.occupancy import OccupancyResult, occupancy
from repro.gpu.costmodel import BlockWork, SmContext, TileWork, block_cycles
from repro.gpu.simulator import (
    KernelLaunch,
    SimulationResult,
    simulate_kernel,
    simulate_stream_serial,
    simulate_streams_concurrent,
)
from repro.gpu.calibration import calibrate_tlp_threshold, validation_calibrate_tlp_threshold

__all__ = [
    "DeviceSpec",
    "get_device",
    "list_devices",
    "VOLTA_V100",
    "PASCAL_P100",
    "PASCAL_1080TI",
    "PASCAL_TITANXP",
    "MAXWELL_M60",
    "MAXWELL_TITANX",
    "BackendSpec",
    "CudaBackend",
    "SystolicBackend",
    "SramBackend",
    "get_backend",
    "list_backends",
    "OccupancyResult",
    "occupancy",
    "BlockWork",
    "SmContext",
    "TileWork",
    "block_cycles",
    "KernelLaunch",
    "SimulationResult",
    "simulate_kernel",
    "simulate_stream_serial",
    "simulate_streams_concurrent",
    "calibrate_tlp_threshold",
    "validation_calibrate_tlp_threshold",
]
