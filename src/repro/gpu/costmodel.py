"""Per-thread-block cycle cost model.

This is the analytic stand-in for GPU silicon.  It prices one thread
block's execution in SM cycles given the *context* the block runs in
(how many blocks share each SM and what slice of DRAM bandwidth the
block gets).  The model captures exactly the mechanisms the paper's
framework trades against each other:

* **Throughput terms.**  Each main-loop iteration (Figure 2) moves
  ``(BY*BK + BK*BX)*4`` bytes through DRAM and performs ``BY*BX*BK``
  FMAs; with ``R`` co-resident blocks, the block's fair share of FMA
  lanes and issue slots shrinks by ``R``; bandwidth is shared across
  every concurrently running block on the device.
* **Memory-level parallelism (Little's law).**  A block cannot consume
  more bandwidth than its in-flight requests sustain: ``warps x
  loads-in-flight-per-warp x request size / latency``.  A sparse
  launch therefore cannot saturate DRAM no matter how large its fair
  share -- the low-TLP pathology the tiling engine's threshold guards
  against.
* **Pipeline-fill (ILP).**  The first A/B tile load of a block is
  fully exposed (software pipelining has nothing to overlap with);
  later tiles of the *same* block prefetch under the previous tile's
  main loop and pay only a small switch cost.  This is the mechanism
  the batching engine exploits for small-K tiles, amortizing one
  exposed round trip plus one dispatch across several tiles.
* **Idle threads.**  A tile computed by fewer threads than the block
  allocates (the non-unified thread structure of Figure 3(b)) issues
  work and sustains memory traffic from its active warps only, while
  the block's full footprint still counts against occupancy.
* **Bubble blocks** (MAGMA's rectangular ``gridDim.z`` expansion)
  carry no tiles and cost one dispatch.

All constants are per-device (:class:`repro.gpu.specs.DeviceSpec`) or
module-level and documented; ``repro.gpu.calibration`` ties them to
the paper's offline threshold procedure.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.precision import Precision, PrecisionLike
from repro.core.tiling import TilingStrategy
from repro.gpu.specs import DeviceSpec

#: Cycles to switch a persistent block from one tile to the next when
#: the next tile's first loads were prefetched under the current tile.
TILE_SWITCH_CYCLES = 32

#: Fixed epilogue drain cycles per tile (C writeback bookkeeping).
EPILOGUE_CONST_CYCLES = 24

#: Auxiliary (address/loop) instructions per thread per iteration.
AUX_INSTS_PER_ITER = 4

#: Floats per vectorized shared-memory load.
SMEM_VECTOR_WIDTH = 4

#: Floats per vectorized global load (the paper's 16-byte Load_width).
GMEM_VECTOR_WIDTH = 4

#: Pipeline fill cost of a block's first tile, in units of one
#: steady-state iteration.  The Figure 2 kernel is a 3-4 stage
#: software pipeline (global->shared, shared->register, compute, each
#: double-buffered); the ramp until every stage is busy costs a few
#: iterations beyond the exposed memory round trip.  Subsequent tiles
#: of the same block prefetch under the previous tile's main loop and
#: skip the ramp -- the ILP the batching engine recovers for small-K
#: tiles (calibrated against the paper's batching-engine contribution,
#: Figure 9).
PIPELINE_FILL_ITERS = 4.0

#: Instruction-count compression of FP16 tensor-core math: one HMMA
#: instruction covers many scalar FMAs, shrinking issue pressure.
TENSOR_CORE_ISSUE_COMPRESSION = 8.0


@dataclass(frozen=True)
class TileWork:
    """One tile's workload as seen by the cost model.

    ``strategy`` fixes the tile geometry; ``k`` is the reduction depth
    (the tile's GEMM's K); ``active_threads`` is how many of the
    block's threads participate -- fewer than the block allocation
    models the idle-thread pathology of a non-unified thread structure.
    """

    strategy: TilingStrategy
    k: int
    active_threads: int = 0  # 0 means "strategy.threads"
    precision: PrecisionLike = Precision.FP32

    def __post_init__(self) -> None:
        if self.k <= 0:
            raise ValueError(f"tile depth k must be positive, got {self.k}")
        if self.active_threads < 0:
            raise ValueError("active_threads must be non-negative")
        # Strings coerce through the enum, which raises on unknown
        # spellings -- a typo must not silently price as fp32.
        object.__setattr__(self, "precision", Precision.coerce(self.precision))

    @property
    def threads(self) -> int:
        return self.active_threads or self.strategy.threads

    @property
    def n_iterations(self) -> int:
        """Main-loop trip count: ceil(K / BK)."""
        return -(-self.k // self.strategy.bk)

    @property
    def element_bytes(self) -> int:
        """Bytes per matrix element for the tile's storage precision."""
        return self.precision.storage_bytes

    @property
    def bytes_per_iteration(self) -> int:
        """DRAM bytes staged per iteration (A tile + B tile)."""
        s = self.strategy
        return (s.by * s.bk + s.bk * s.bx) * self.element_bytes

    @property
    def fmas_per_iteration(self) -> int:
        """FMA operations per iteration for the whole tile."""
        s = self.strategy
        return s.by * s.bx * s.bk

    @property
    def gmem_loads_per_thread_per_iteration(self) -> float:
        """Equation 2: vectorized global loads per thread per iteration."""
        s = self.strategy
        return (s.by * s.bk + s.bk * s.bx) / (GMEM_VECTOR_WIDTH * self.threads)

    @property
    def insts_per_thread_per_iteration(self) -> float:
        """Per-thread instruction count of one main-loop iteration.

        FMAs (Eq. 3 per iteration), vectorized shared-memory fragment
        loads, vectorized global loads (Eq. 2), and auxiliary
        arithmetic.
        """
        s = self.strategy
        t = self.threads
        fma = s.by * s.bx * s.bk / t
        smem = (s.by * s.bk + s.bk * s.bx) / (SMEM_VECTOR_WIDTH * t)
        return fma + smem + self.gmem_loads_per_thread_per_iteration + AUX_INSTS_PER_ITER

    @property
    def active_warps(self) -> int:
        return -(-self.threads // 32)

    @property
    def epilogue_bytes(self) -> int:
        """C-tile writeback traffic."""
        s = self.strategy
        return s.by * s.bx * self.element_bytes

    def little_bw_bytes_per_cycle(self, device: DeviceSpec) -> float:
        """Little's-law bandwidth ceiling of this tile's memory stream.

        Each active warp keeps about ``device.mlp_bytes_per_warp``
        bytes in flight (issue serialization, iteration barriers and
        address dependencies keep this well below the architectural
        maximum), scaled up when a thread issues several independent
        global loads per iteration (heavier sub-tiles expose more
        memory-level parallelism per warp -- the per-thread ILP the
        128-thread strategy pool trades threads for).  Dividing by the
        round-trip latency gives the bandwidth this block can sustain
        on its own.  A sparse launch is therefore bandwidth-starved no
        matter how large its fair share -- the low-TLP pathology the
        framework fights.
        """
        ilp_scale = 0.5 + 0.5 * self.gmem_loads_per_thread_per_iteration
        in_flight = self.active_warps * device.mlp_bytes_per_warp * ilp_scale
        return in_flight / device.mem_latency_cycles


@dataclass(frozen=True)
class BlockWork:
    """One thread block: its resource footprint plus the tiles it runs.

    ``threads`` / ``registers_per_thread`` / ``shared_memory_bytes``
    describe the *allocated* footprint used for occupancy (in a fused
    kernel these are the maxima over every strategy the kernel may
    execute).  An empty ``tiles`` tuple is a bubble block.
    """

    threads: int
    registers_per_thread: int
    shared_memory_bytes: int
    tiles: tuple[TileWork, ...] = ()

    def __post_init__(self) -> None:
        if self.threads <= 0:
            raise ValueError(f"threads must be positive, got {self.threads}")
        if self.registers_per_thread <= 0:
            raise ValueError("registers_per_thread must be positive")
        if self.shared_memory_bytes < 0:
            raise ValueError("shared_memory_bytes must be non-negative")

    @property
    def is_bubble(self) -> bool:
        return not self.tiles

    @property
    def warps(self) -> int:
        return -(-self.threads // 32)

    @property
    def total_iterations(self) -> int:
        return sum(t.n_iterations for t in self.tiles)

    @property
    def total_fmas(self) -> int:
        return sum(t.fmas_per_iteration * t.n_iterations for t in self.tiles)

    @property
    def total_dram_bytes(self) -> int:
        return sum(
            t.bytes_per_iteration * t.n_iterations + t.epilogue_bytes for t in self.tiles
        )


@dataclass(frozen=True)
class SmContext:
    """The sharing context a block executes under.

    ``resident_blocks`` -- blocks co-resident on the SM (>= 1); scales
    the block's FMA-lane and issue-slot shares.
    ``bw_bytes_per_cycle`` -- the block's fair share of device DRAM
    bandwidth given how many blocks run concurrently device-wide.
    ``l2_bw_bytes_per_cycle`` -- the block's fair share of L2
    bandwidth.
    ``l2_hit_fraction`` -- fraction of the kernel's A/B tile traffic
    served from L2 (redundant re-loads of a working set that fits);
    computed per launch by the simulator from the batch footprint.
    """

    resident_blocks: int
    bw_bytes_per_cycle: float
    l2_bw_bytes_per_cycle: float = 1.0
    l2_hit_fraction: float = 0.0

    def __post_init__(self) -> None:
        if self.resident_blocks < 1:
            raise ValueError("resident_blocks must be >= 1")
        if self.bw_bytes_per_cycle <= 0:
            raise ValueError("bw_bytes_per_cycle must be positive")
        if self.l2_bw_bytes_per_cycle <= 0:
            raise ValueError("l2_bw_bytes_per_cycle must be positive")
        if not 0.0 <= self.l2_hit_fraction <= 1.0:
            raise ValueError("l2_hit_fraction must be within [0, 1]")


def effective_dram_bandwidth(
    device: DeviceSpec, tile: TileWork, ctx: SmContext
) -> float:
    """DRAM bandwidth this tile's stream actually sustains.

    The smaller of the fair share (contention) and the Little's-law
    ceiling (a lone block cannot keep DRAM busy).
    """
    return min(ctx.bw_bytes_per_cycle, tile.little_bw_bytes_per_cycle(device))


def effective_l2_bandwidth(device: DeviceSpec, tile: TileWork, ctx: SmContext) -> float:
    """L2 bandwidth this tile's stream sustains (same MLP, lower latency)."""
    little = (
        tile.little_bw_bytes_per_cycle(device)
        * device.mem_latency_cycles
        / device.l2_latency_cycles
    )
    return min(ctx.l2_bw_bytes_per_cycle, little)


def memory_cycles_per_iteration(
    device: DeviceSpec, tile: TileWork, ctx: SmContext, include_stores: bool = True
) -> float:
    """Cycles the memory system needs per main-loop iteration.

    The iteration's A/B traffic splits into an L2-served fraction and
    a DRAM-served remainder; the two streams pipeline, so the slower
    one bounds the iteration.  The C writeback is fire-and-forget
    streaming DRAM traffic: it does not serialize the block (the SM
    retires the block while stores drain) but its bandwidth demand is
    spread over the tile's iterations.
    """
    hit = ctx.l2_hit_fraction
    store_bytes = (tile.epilogue_bytes / tile.n_iterations) if include_stores else 0.0
    dram_bytes = (1.0 - hit) * tile.bytes_per_iteration + store_bytes
    l2_bytes = hit * tile.bytes_per_iteration
    dram = dram_bytes / effective_dram_bandwidth(device, tile, ctx)
    l2 = l2_bytes / effective_l2_bandwidth(device, tile, ctx)
    return max(dram, l2)


def iteration_cycles(
    device: DeviceSpec, tile: TileWork, ctx: SmContext, include_stores: bool = True
) -> float:
    """Steady-state cycles per main-loop iteration of one tile.

    Bound by the slowest of three resources: the block's FMA-lane
    share, its achievable memory bandwidth, and its warp-issue demand.
    ``include_stores=False`` prices the A/B pipeline alone (used for
    the pipeline-fill prologue, which the C writeback is not part of).
    """
    r = ctx.resident_blocks
    # fp16 and bf16 share the half-width datapath (Tensor-Core / matrix
    # unit where present, packed half2 math otherwise).
    lanes = (
        device.fp16_fma_per_sm if tile.precision.is_reduced else device.fma_lanes_per_sm
    )
    compute = tile.fmas_per_iteration / (lanes / r)
    memory = memory_cycles_per_iteration(device, tile, ctx, include_stores=include_stores)
    # Warps issue roughly one instruction per scheduler slot per cycle;
    # R blocks share the SM's schedulers.  Tensor-core FP16 math packs
    # many FMAs per instruction, shrinking issue pressure.
    issue = (
        tile.active_warps
        * tile.insts_per_thread_per_iteration
        * r
        / device.warp_schedulers_per_sm
    )
    if tile.precision.is_reduced and device.tensor_core_fp16_fma_per_sm > 0:
        issue /= TENSOR_CORE_ISSUE_COMPRESSION
    return max(compute, memory, issue)


def tile_cycles(
    device: DeviceSpec, tile: TileWork, ctx: SmContext, first_in_block: bool
) -> float:
    """Cycles for one tile: prologue + main loop + epilogue.

    The first tile of a block pays a fully exposed prologue -- one
    memory round trip plus roughly one iteration of pipeline ramp.
    Subsequent tiles were prefetched under the previous tile's main
    loop and pay only the switch cost -- the ILP benefit the batching
    engine buys, largest exactly when K is small and the ramp is a big
    fraction of the tile's work.
    """
    t_iter = iteration_cycles(device, tile, ctx)
    if first_in_block:
        ramp = iteration_cycles(device, tile, ctx, include_stores=False)
        prologue = device.mem_latency_cycles + PIPELINE_FILL_ITERS * ramp
    else:
        prologue = TILE_SWITCH_CYCLES
    main = tile.n_iterations * t_iter
    # Store *time* is folded into the iteration stream (see
    # memory_cycles_per_iteration); only the bookkeeping drain is
    # serial here.
    return float(prologue + main + EPILOGUE_CONST_CYCLES)


def l2_hit_fraction(
    device: DeviceSpec,
    compulsory_ab_bytes: float | None,
    traffic_ab_bytes: float,
) -> float:
    """Fraction of a kernel's A/B traffic served from L2.

    ``compulsory_ab_bytes`` is the batch's unique A/B footprint (each
    operand read once from DRAM no matter the tiling);
    ``traffic_ab_bytes`` the total tile traffic the chosen tiling
    induces.  The redundant fraction ``1 - compulsory/traffic`` hits L2
    to the extent the footprint fits (``l2_size / compulsory``, capped
    at 1).  ``None`` footprint (unknown workload) disables L2 credit.
    """
    if compulsory_ab_bytes is None or compulsory_ab_bytes <= 0 or traffic_ab_bytes <= 0:
        return 0.0
    redundant = max(0.0, 1.0 - compulsory_ab_bytes / traffic_ab_bytes)
    coverage = min(1.0, device.l2_size_bytes / compulsory_ab_bytes)
    return redundant * coverage


def block_cycles(device: DeviceSpec, block: BlockWork, ctx: SmContext) -> float:
    """Total cycles one block occupies its SM slot.

    A bubble block costs one dispatch.  A working block costs dispatch
    plus the sum of its tiles' costs, the first tile paying the exposed
    pipeline-fill prologue.
    """
    total = float(device.block_dispatch_cycles)
    for i, tile in enumerate(block.tiles):
        total += tile_cycles(device, tile, ctx, first_in_block=(i == 0))
    return total
