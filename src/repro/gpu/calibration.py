"""Offline TLP-threshold calibration (paper Section 4.2.3).

    "The TLP threshold in Step 3 is set empirically.  It depends on the
    specific GPU architecture.  On each platform, we determine the
    threshold by starting with a huge GEMM case and decreasing the TLP
    iteratively.  We choose the inflection point with large performance
    degradation as the TLP threshold."

We reproduce the procedure against the simulator: run a compute-dense
kernel (huge tiles, deep K so steady-state throughput dominates) while
shrinking the number of tiles, record achieved FLOPS versus the Eq. 1
TLP, and return the smallest TLP that still achieves a target fraction
of the plateau throughput.  The shipped :data:`DeviceSpec.tlp_threshold`
values were produced this way and are validated by the test suite.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.options import Heuristic
from repro.core.tiling import BATCHED_STRATEGIES_256, TilingStrategy
from repro.gpu.costmodel import BlockWork, TileWork
from repro.gpu.simulator import KernelLaunch, simulate_kernel
from repro.gpu.specs import DeviceSpec


@dataclass(frozen=True)
class CalibrationPoint:
    """One sweep sample: TLP versus achieved throughput."""

    num_blocks: int
    tlp: int
    tflops: float


@dataclass(frozen=True)
class CalibrationResult:
    """Sweep samples plus the chosen threshold."""

    points: tuple[CalibrationPoint, ...]
    threshold: int
    plateau_tflops: float


def calibrate_tlp_threshold(
    device: DeviceSpec,
    k_depth: int = 2048,
    degradation: float = 0.90,
    strategy: TilingStrategy | None = None,
) -> CalibrationResult:
    """Run the paper's threshold procedure on the simulated device.

    Parameters
    ----------
    device:
        Target device.
    k_depth:
        Reduction depth of the probe tiles; deep enough that the
        steady-state iteration cost dominates prologue effects.
    degradation:
        Throughput fraction of the plateau below which performance is
        considered degraded; the threshold is the smallest sampled TLP
        still at or above this fraction.
    strategy:
        Probe tiling strategy; defaults to huge/256 as in the paper.
    """
    if not 0 < degradation < 1:
        raise ValueError(f"degradation must be in (0, 1), got {degradation}")
    strat = strategy or BATCHED_STRATEGIES_256[-1]

    points: list[CalibrationPoint] = []
    # Sweep block counts from far above full occupancy down to a single
    # block, halving each step ("decreasing the TLP iteratively").
    n = device.num_sms * device.max_blocks_per_sm * 4
    while n >= 1:
        tile = TileWork(strategy=strat, k=k_depth)
        block = BlockWork(
            threads=strat.threads,
            registers_per_thread=strat.registers_per_thread,
            shared_memory_bytes=strat.shared_memory_bytes,
            tiles=(tile,),
        )
        launch = KernelLaunch(name=f"probe[{n}]", blocks=(block,) * n)
        result = simulate_kernel(device, launch, include_launch_overhead=False)
        flops = 2.0 * n * tile.fmas_per_iteration * tile.n_iterations
        seconds = device.cycles_to_seconds(result.cycles)
        tflops = flops / seconds / 1e12
        points.append(CalibrationPoint(num_blocks=n, tlp=n * strat.threads, tflops=tflops))
        n //= 2

    points.sort(key=lambda p: p.tlp)
    plateau = max(p.tflops for p in points)
    threshold = points[-1].tlp
    for p in points:
        if p.tflops >= degradation * plateau:
            threshold = p.tlp
            break
    return CalibrationResult(points=tuple(points), threshold=threshold, plateau_tflops=plateau)


def validation_calibrate_tlp_threshold(
    device: DeviceSpec,
    candidates: tuple[int, ...] = (16384, 32768, 49152, 65536, 81920, 98304, 131072),
    n_cases: int = 30,
    seed: int = 0,
    tolerance: float = 0.05,
) -> int:
    """End-to-end threshold calibration against a validation workload.

    The probe-kernel procedure above mirrors the paper's description,
    but the threshold that matters is the one that makes the *whole
    framework* fast.  This variant runs the framework-vs-MAGMA
    comparison on random validation cases for each candidate threshold
    and returns the smallest candidate whose geomean speedup is within
    ``tolerance`` of the best -- the procedure that produced the
    shipped non-V100 ``tlp_threshold`` values (the V100 keeps the
    paper's published 65536).
    """
    import dataclasses

    # Imported lazily: the framework sits above this module.
    from repro.analysis.metrics import geomean
    from repro.baselines.magma_vbatch import simulate_magma_vbatch
    from repro.core.framework import CoordinatedFramework
    from repro.workloads.synthetic import random_cases

    if not candidates:
        raise ValueError("need at least one candidate threshold")
    cases = random_cases(n_cases=n_cases, seed=seed)
    scores: dict[int, float] = {}
    for threshold in candidates:
        dev = dataclasses.replace(device, tlp_threshold=threshold)
        framework = CoordinatedFramework(device=dev)
        speedups = [
            simulate_magma_vbatch(batch, dev).time_ms
            / framework.simulate(batch, heuristic=Heuristic.BEST).time_ms
            for batch in cases
        ]
        scores[threshold] = geomean(speedups)
    best = max(scores.values())
    for threshold in sorted(scores):
        if scores[threshold] >= (1.0 - tolerance) * best:
            return threshold
    return max(scores, key=scores.get)  # pragma: no cover - unreachable
