"""Grouped vectorized execution engine for batch schedules.

The reference executor (:mod:`repro.kernels.persistent`) walks the
five auxiliary arrays exactly like the CUDA kernel of Figure 7 -- one
Python iteration per tile slot, with per-tile staging buffers.  That
faithfulness is what makes it the *oracle*, but it also means the
interpreter overhead grows with the tile count: precisely the
per-problem dispatch cost the paper's batching exists to remove.

This module applies the paper's own insight to the host-side executor:
regroup many fine-grained work items into few homogeneous bulk
operations.  A :class:`BatchSchedule` is *lowered* once into a
:class:`GroupedPlan` -- tile slots bucketed by
``(gemm, strategy, interior/edge)`` -- and executed bulk-wise: since
a GEMM's groups jointly tile its whole C matrix, the per-tile
``(by, chunk, bx)`` products of every group collapse onto *windows of
one shared chunk-accumulated full product* ``sum_c A[:,c] @ B[c,:]``
(one ``np.matmul`` per ``BK`` chunk per GEMM, instead of one per tile
slot per chunk).  Each group then gathers its windows into a
``(G, by, bx)`` stack, applies the alpha/beta epilogue as one
vectorized expression, and scatters the results back; output coverage
is validated with one difference-array pass per GEMM instead of a
per-element counter walk.

**Bit-exactness contract.**  The grouped engine produces outputs that
are bit-identical to :func:`repro.kernels.persistent.execute_schedule`.
Two properties make this possible:

* the K reduction keeps the reference's chunk order -- one matmul per
  ``BK`` chunk, accumulated in float64 in ascending ``k0`` order (a
  single full-K matmul would associate the sum differently and drift
  in the last bits);
* within one ``BK`` chunk, BLAS computes every output element as the
  same ascending-``k`` FMA sequence over its row/column operands,
  independent of the surrounding matrix shape -- so the full-operand
  chunk product agrees element-for-element with the reference's staged
  per-tile products, interior and (zero-padded) edge tiles alike.
  The equivalence test suite pins this property bitwise across all
  twelve Table-2 strategies, transposed operands, and ragged edges.

The lowered plan depends only on the schedule and the batch *shapes*
(never on operand data), so it is memoized per schedule in a bounded
weakref :class:`~repro.kernels.memo.PlanMemo`: schedules held by a
:class:`~repro.core.plancache.PlanCache` keep their grouped plan warm
and repeated serve executions skip re-lowering, while dropped
schedules release their plans instead of leaking them.  Lowering emits an ``execute.lower`` span and a
``grouped.groups_formed`` counter; each shared chunk product runs
under an ``execute.product`` span, and each group epilogue under an
``execute.group`` span with a ``grouped.tiles_per_matmul`` histogram
observation.

This module deliberately does not import
:mod:`repro.kernels.persistent` (and vice versa): either engine must
stay importable without the other.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.problem import GemmBatch, validate_operands
from repro.core.schedule import BatchSchedule
from repro.core.tiling import ALL_BATCHED_STRATEGIES, strategy_by_index
from repro.kernels.memo import PlanMemo
from repro.telemetry import get_tracer


def _batch_token(batch: GemmBatch) -> tuple:
    """The batch identity a lowered plan is valid for (shapes only)."""
    return tuple((g.m, g.n, g.k, g.trans_a, g.trans_b) for g in batch)


@dataclass(frozen=True)
class TileGroup:
    """One homogeneous bucket of tile slots.

    All tiles in a group belong to the same GEMM, use the same tiling
    strategy, and are uniformly interior (fully inside the C matrix)
    or edge (clipped by the matrix boundary).  ``y0`` / ``x0`` hold
    the *element* origins of each tile, so the executor never touches
    the tile-grid coordinates again.
    """

    gemm_index: int
    strategy_index: int
    interior: bool
    y0: np.ndarray
    x0: np.ndarray

    @property
    def size(self) -> int:
        """Number of tiles gathered into this group's operand stacks."""
        return len(self.y0)


@dataclass(frozen=True)
class GroupedPlan:
    """A schedule lowered to bulk-executable tile groups."""

    num_tiles: int
    groups: tuple[TileGroup, ...]
    batch_token: tuple

    @property
    def num_groups(self) -> int:
        return len(self.groups)

    @property
    def interior_tiles(self) -> int:
        return sum(g.size for g in self.groups if g.interior)

    @property
    def edge_tiles(self) -> int:
        return sum(g.size for g in self.groups if not g.interior)


def lower_schedule(schedule: BatchSchedule, batch: GemmBatch) -> GroupedPlan:
    """Bucket a schedule's tile slots into homogeneous groups.

    Block boundaries are irrelevant to the numerical result (blocks
    only matter to the performance model), so the lowering flattens
    them away and sorts slots by ``(gemm, strategy, interior)``.
    Raises ``IndexError`` for out-of-range GEMM or strategy ids, like
    the reference walk would on the offending slot.
    """
    tracer = get_tracer()
    with tracer.span(
        "execute.lower", tiles=schedule.num_tiles, gemms=len(batch)
    ) as span:
        plan = _lower(schedule, batch)
        tracer.counter("grouped.groups_formed", plan.num_groups)
        if span.enabled:
            span.set_attr("groups", plan.num_groups)
            span.set_attr("interior_tiles", plan.interior_tiles)
            span.set_attr("edge_tiles", plan.edge_tiles)
    return plan


def _lower(schedule: BatchSchedule, batch: GemmBatch) -> GroupedPlan:
    gemm_ids = schedule.gemm_ids.astype(np.int64)
    strat_ids = schedule.strategy_ids.astype(np.int64)
    n_strats = len(ALL_BATCHED_STRATEGIES)

    if gemm_ids.size and (gemm_ids.min() < 0 or gemm_ids.max() >= len(batch)):
        bad = int(gemm_ids[(gemm_ids < 0) | (gemm_ids >= len(batch))][0])
        raise IndexError(f"gemm id {bad} out of range 0-{len(batch) - 1}")
    if strat_ids.size and (strat_ids.min() < 0 or strat_ids.max() >= n_strats):
        bad = int(strat_ids[(strat_ids < 0) | (strat_ids >= n_strats)][0])
        strategy_by_index(bad)  # raises the canonical IndexError

    by_tab = np.array([s.by for s in ALL_BATCHED_STRATEGIES], dtype=np.int64)
    bx_tab = np.array([s.bx for s in ALL_BATCHED_STRATEGIES], dtype=np.int64)
    ms = np.array([g.m for g in batch], dtype=np.int64)
    ns = np.array([g.n for g in batch], dtype=np.int64)

    y0 = schedule.y_coords.astype(np.int64) * by_tab[strat_ids]
    x0 = schedule.x_coords.astype(np.int64) * bx_tab[strat_ids]
    interior = (y0 + by_tab[strat_ids] <= ms[gemm_ids]) & (
        x0 + bx_tab[strat_ids] <= ns[gemm_ids]
    )

    # Composite bucket key; stable sort keeps slot order within a group.
    key = (gemm_ids * n_strats + strat_ids) * 2 + interior
    order = np.argsort(key, kind="stable")
    groups: list[TileGroup] = []
    uniq, starts = np.unique(key[order], return_index=True)
    bounds = list(starts) + [len(order)]
    for u, begin, end in zip(uniq, bounds[:-1], bounds[1:]):
        sel = order[begin:end]
        gi_si, inter = divmod(int(u), 2)
        gi, si = divmod(gi_si, n_strats)
        groups.append(
            TileGroup(
                gemm_index=gi,
                strategy_index=si,
                interior=bool(inter),
                y0=y0[sel],
                x0=x0[sel],
            )
        )
    return GroupedPlan(
        num_tiles=schedule.num_tiles,
        groups=tuple(groups),
        batch_token=_batch_token(batch),
    )


#: Bounded memo of lowered plans (weakref-keyed; see ``memo.py``).
_GROUPED_MEMO = PlanMemo(capacity=256, name="grouped")


def grouped_plan_for(schedule: BatchSchedule, batch: GemmBatch) -> GroupedPlan:
    """The memoized grouped plan of a schedule.

    Plans are held in a bounded weakref
    :class:`~repro.kernels.memo.PlanMemo` keyed by schedule identity
    and batch shapes: a schedule cached by the plan cache keeps its
    lowering warm, an evicted or dropped schedule releases it (earlier
    revisions stashed the plan as a schedule attribute, which leaked
    lowered plans for as long as the schedule lived and kept no bound
    or stats).  Two threads racing on a cold schedule both lower and
    the later ``put`` wins -- the plans are identical, mirroring the
    plan cache's plan-outside-the-lock policy.
    """
    token = _batch_token(batch)
    cached = _GROUPED_MEMO.get(schedule, token)
    if cached is not None:
        return cached
    return _GROUPED_MEMO.put(schedule, token, lower_schedule(schedule, batch))


def grouped_memo_stats():
    """Hit/miss/eviction counters of the grouped-plan memo."""
    return _GROUPED_MEMO.stats_snapshot()


def clear_grouped_memo() -> None:
    """Drop every memoized grouped plan (tests, long-lived processes)."""
    _GROUPED_MEMO.clear()


def execute_grouped(
    schedule: BatchSchedule,
    batch: GemmBatch,
    operands: Sequence[tuple[np.ndarray, np.ndarray, np.ndarray]],
    plan: GroupedPlan | None = None,
) -> list[np.ndarray]:
    """Execute a batch schedule through its grouped lowering.

    Drop-in for :func:`repro.kernels.persistent.execute_schedule`
    (bit-identical outputs; inputs are not modified; raises
    ``ValueError`` on operand-shape mismatches or when the schedule
    does not cover every output element exactly once).  ``plan``
    optionally supplies a pre-lowered plan; by default the memoized
    lowering of the schedule is used.
    """
    tracer = get_tracer()
    with tracer.span(
        "execute.grouped",
        blocks=schedule.num_blocks,
        tiles=schedule.num_tiles,
    ):
        tracer.counter("tiles_executed", schedule.num_tiles)
        return _execute_grouped(schedule, batch, operands, plan)


def _execute_grouped(
    schedule: BatchSchedule,
    batch: GemmBatch,
    operands: Sequence[tuple[np.ndarray, np.ndarray, np.ndarray]],
    plan: GroupedPlan | None,
) -> list[np.ndarray]:
    validate_operands(batch, operands)
    if plan is None or plan.batch_token != _batch_token(batch):
        plan = grouped_plan_for(schedule, batch)

    tracer = get_tracer()
    outputs = [np.zeros((g.m, g.n), dtype=op[2].dtype) for g, op in zip(batch, operands)]

    by_gemm: dict[int, list[TileGroup]] = {}
    for group in plan.groups:
        by_gemm.setdefault(group.gemm_index, []).append(group)

    for gi, groups in by_gemm.items():
        gemm = batch[gi]
        a, b, c = operands[gi]
        # Float64 op(A)/op(B) copies: the float32 -> float64 widening is
        # exact, so this matches the reference's per-chunk staging casts
        # bit for bit.
        a64 = np.ascontiguousarray(gemm.op_a(a), dtype=np.float64)
        b64 = np.ascontiguousarray(gemm.op_b(b), dtype=np.float64)

        # One shared chunk-accumulated full product per distinct BK
        # among this GEMM's strategies (a single BK in practice: every
        # Table-2 strategy uses BK=8).  Every tile of every group reads
        # its window from this product.
        accs: dict[int, np.ndarray] = {}
        for group in groups:
            bk = strategy_by_index(group.strategy_index).bk
            if bk not in accs:
                with tracer.span(
                    "execute.product", gemm=gi, bk=bk, m=gemm.m, n=gemm.n, k=gemm.k
                ):
                    accs[bk] = _chunk_product(a64, b64, bk)

        for group in groups:
            strat = strategy_by_index(group.strategy_index)
            with tracer.span(
                "execute.group",
                gemm=gi,
                strategy=strat.name,
                interior=group.interior,
                tiles=group.size,
            ):
                tracer.histogram("grouped.tiles_per_matmul", group.size)
                _epilogue_group(group, gemm, accs[strat.bk], c, outputs[gi], strat)

    _check_coverage(plan, batch)
    return outputs


def _chunk_product(a64: np.ndarray, b64: np.ndarray, bk: int) -> np.ndarray:
    """``op(A) @ op(B)`` accumulated one BK chunk at a time.

    This is the K main loop of Figure 2 hoisted from per-tile staging
    buffers to the full operands: one matmul per BK chunk, accumulated
    in float64 in ascending chunk order.
    """
    m, k = a64.shape
    n = b64.shape[1]
    acc = np.zeros((m, n), dtype=np.float64)
    tmp = np.empty((m, n), dtype=np.float64)
    for k0 in range(0, k, bk):
        k_hi = min(k0 + bk, k)
        np.matmul(a64[:, k0:k_hi], b64[k0:k_hi, :], out=tmp)
        np.add(acc, tmp, out=acc)
    return acc


def _epilogue_group(
    group: TileGroup,
    gemm,
    acc_full: np.ndarray,
    c: np.ndarray,
    out: np.ndarray,
    strat,
) -> None:
    """Apply the alpha/beta epilogue over one group's tile windows."""
    by, bx = strat.by, strat.bx
    if group.interior:
        rows = group.y0[:, None, None] + np.arange(by, dtype=np.int64)[None, :, None]
        cols = group.x0[:, None, None] + np.arange(bx, dtype=np.int64)[None, None, :]
        acc = acc_full[rows, cols]  # (G, by, bx) windows of the product
        c_stack = c[rows, cols].astype(np.float64)
        out[rows, cols] = (gemm.alpha * acc + gemm.beta * c_stack).astype(c.dtype)
    else:
        y_hi = np.minimum(group.y0 + by, gemm.m)
        x_hi = np.minimum(group.x0 + bx, gemm.n)
        for i in range(group.size):
            y0, x0 = int(group.y0[i]), int(group.x0[i])
            yh, xh = int(y_hi[i]), int(x_hi[i])
            valid = acc_full[y0:yh, x0:xh]
            out[y0:yh, x0:xh] = (
                gemm.alpha * valid + gemm.beta * c[y0:yh, x0:xh].astype(np.float64)
            ).astype(c.dtype)


def _check_coverage(plan: GroupedPlan, batch: GemmBatch) -> None:
    """Validate exactly-once output coverage, one pass per GEMM.

    Uses the 2-D difference-array trick: +1/-1 at the four corners of
    every tile rectangle, then a double cumulative sum reconstructs
    the per-element coverage counts without a Python loop over tiles.
    """
    for gi, gemm in enumerate(batch):
        diff = np.zeros((gemm.m + 1, gemm.n + 1), dtype=np.int64)
        for group in plan.groups:
            if group.gemm_index != gi:
                continue
            strat = strategy_by_index(group.strategy_index)
            y_hi = np.minimum(group.y0 + strat.by, gemm.m)
            x_hi = np.minimum(group.x0 + strat.bx, gemm.n)
            np.add.at(diff, (group.y0, group.x0), 1)
            np.add.at(diff, (y_hi, group.x0), -1)
            np.add.at(diff, (group.y0, x_hi), -1)
            np.add.at(diff, (y_hi, x_hi), 1)
        cov = diff.cumsum(axis=0).cumsum(axis=1)[: gemm.m, : gemm.n]
        if not np.all(cov == 1):
            uncovered = int(np.sum(cov == 0))
            duplicated = int(np.sum(cov > 1))
            raise ValueError(
                f"schedule does not tile GEMM {gi} exactly once: "
                f"{uncovered} elements uncovered, {duplicated} covered repeatedly"
            )
