"""Compiled-plan execution: a schedule lowered to a flat artifact.

The grouped engine (:mod:`repro.kernels.grouped`) removed the
per-tile interpreter overhead, but each execution still *walks the
lowered plan at Python level*: iterate ``TileGroup`` objects, build
gather index stacks, allocate accumulators and window stacks, and run
an ``np.add.at`` coverage pass -- per call, even when the schedule came
straight out of a warm :class:`~repro.core.plancache.PlanCache`.  For
a serve hot path that executes the same few schedules millions of
times, that is pure interpretation tax.

This module compiles a schedule **once** into a :class:`CompiledPlan`
artifact -- the same move tritonBLAS makes for GEMM parameter selection
and Stream-K++ makes for kernel-configuration caching (see
``PAPERS.md``): turn per-call decision work into an ahead-of-time
artifact, so steady-state dispatch is a lookup plus a minimal
interpreter loop.  Compilation:

* validates the schedule up front (GEMM/strategy id ranges and the
  exactly-once output coverage check move from per-execution to
  per-compile);
* flattens the tile groups into per-GEMM **chunk tables** (the
  ascending ``(k0, k_hi)`` ranges of the BK main loop) and, when a
  GEMM mixes BK depths, flat **gather/scatter element index arrays**
  mapping each BK's accumulator to the output elements its tiles
  cover (with a single BK -- every Table-2 strategy -- the epilogue
  collapses to one full-matrix vectorized expression and no index
  arrays are materialized);
* preallocates every scratch buffer the interpreter needs (float64
  operand copies, the chunk-product accumulator and temporary, the
  epilogue staging buffers).

Execution (:meth:`CompiledPlan.run`) is then a fixed sequence of
``np.copyto`` / ``np.matmul`` / ``np.multiply`` / ``np.add`` calls over
those buffers: **zero Python plan-walking and zero per-call
allocation** except the returned output arrays themselves (callers own
the results, so they must be fresh).

**Bit-exactness contract.**  ``execute_compiled`` is bit-identical to
:func:`repro.kernels.grouped.execute_grouped` (and therefore to the
reference walk):

* the operand staging (`np.copyto` into C-contiguous float64 buffers)
  produces the same values and layout as the grouped engine's
  ``np.ascontiguousarray(..., dtype=np.float64)`` copies, so BLAS sees
  identical inputs;
* the K reduction issues the *same full-width per-chunk matmuls* in the
  same ascending order, accumulated in float64 by the same
  ``np.add``;
* the alpha/beta epilogue is elementwise, so evaluating it over the
  full matrix (or through flat index gathers) performs the identical
  float64 FMA-and-round per element as the grouped engine's per-window
  evaluation.

Because the scratch buffers are shared, a :class:`CompiledPlan` guards
:meth:`run` with a lock: concurrent executions of *one* artifact
serialize (different artifacts run concurrently), trading a little
parallelism for allocation-free steady state.

Artifacts are memoized in a bounded weakref
:class:`~repro.kernels.memo.PlanMemo` keyed by schedule identity and
batch shapes -- a schedule cached by the plan cache keeps its artifact
alive, and a schedule that dies takes its artifact with it.  Memo
traffic is observable via the ``compile.cache_hits`` /
``compile.cache_misses`` / ``compile.evictions`` counters and each
compilation runs under a ``compile.plan`` span.

This module builds on :mod:`repro.kernels.grouped` (the lowering is
shared) but deliberately never imports :mod:`repro.kernels.persistent`
or :mod:`repro.kernels.parallel` -- the oracle and the thread-pool
engine stay independent (CI guards this).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from repro.core.problem import GemmBatch, validate_operands
from repro.core.schedule import BatchSchedule
from repro.core.tiling import strategy_by_index
from repro.kernels.grouped import (
    _batch_token,
    _check_coverage,
    lower_schedule,
)
from repro.kernels.memo import MemoStats, PlanMemo
from repro.telemetry import get_tracer

__all__ = [
    "ChunkProgram",
    "CompiledGemm",
    "CompiledPlan",
    "compile_plan",
    "compiled_plan_for",
    "compiled_memo_stats",
    "clear_compiled_memo",
    "execute_compiled",
]


@dataclass(frozen=True)
class ChunkProgram:
    """One BK depth's precompiled work for one GEMM.

    ``chunks`` holds the ascending ``(k0, k_hi)`` ranges of the K main
    loop (plain ints -- the interpreter slices with them directly).
    ``scatter`` is ``None`` when this program's tiles cover the whole
    output matrix (the single-BK fast path); otherwise it is the flat
    int64 element-index array, into the row-major ``(m * n)`` output,
    of exactly the elements this BK's tiles cover.  ``acc`` is the
    preallocated float64 chunk-product accumulator.
    """

    bk: int
    chunks: tuple[tuple[int, int], ...]
    scatter: Optional[np.ndarray]
    acc: np.ndarray = field(repr=False)


@dataclass(frozen=True)
class CompiledGemm:
    """One GEMM's compiled programs plus its preallocated scratch.

    ``a64`` / ``b64`` stage the float64 ``op(A)`` / ``op(B)`` copies;
    ``tmp`` holds one chunk product; ``c64`` and ``e64`` stage the
    epilogue.  All are reused across calls -- :meth:`CompiledPlan.run`
    never allocates them.
    """

    gemm_index: int
    m: int
    n: int
    k: int
    programs: tuple[ChunkProgram, ...]
    a64: np.ndarray = field(repr=False)
    b64: np.ndarray = field(repr=False)
    tmp: np.ndarray = field(repr=False)
    c64: np.ndarray = field(repr=False)
    e64: np.ndarray = field(repr=False)


@dataclass(frozen=True)
class CompiledPlan:
    """A schedule compiled to a flat, allocation-free execution artifact.

    The artifact is valid for any batch whose shapes/transposes match
    ``batch_token`` -- alpha/beta are *not* baked in (they are read from
    the live batch at :meth:`run` time), matching the plan cache's
    signature, which also excludes them.
    """

    num_tiles: int
    batch_token: tuple
    gemms: tuple[CompiledGemm, ...]
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    @property
    def num_chunks(self) -> int:
        """Total BK chunk-product matmuls one execution issues."""
        return sum(len(p.chunks) for g in self.gemms for p in g.programs)

    @property
    def scratch_bytes(self) -> int:
        """Bytes of preallocated scratch the artifact holds."""
        total = 0
        for g in self.gemms:
            for buf in (g.a64, g.b64, g.tmp, g.c64, g.e64):
                total += buf.nbytes
            for p in g.programs:
                total += p.acc.nbytes
                if p.scatter is not None:
                    total += p.scatter.nbytes
        return total

    def run(
        self,
        batch: GemmBatch,
        operands: Sequence[tuple[np.ndarray, np.ndarray, np.ndarray]],
    ) -> list[np.ndarray]:
        """Execute the compiled program on a matching batch.

        Bit-identical to the grouped engine; inputs are not modified.
        Raises ``ValueError`` when the batch's shapes do not match the
        shapes the artifact was compiled for, or on operand-shape
        mismatches.  Thread-safe: concurrent calls on one artifact
        serialize on its scratch-buffer lock.
        """
        if _batch_token(batch) != self.batch_token:
            raise ValueError(
                "batch shapes do not match the compiled plan "
                "(recompile with compile_plan/compiled_plan_for)"
            )
        validate_operands(batch, operands)
        outputs: list[np.ndarray] = []
        with self._lock:
            for cg in self.gemms:
                gemm = batch[cg.gemm_index]
                a, b, c = operands[cg.gemm_index]
                # Exact float64 widening into preallocated contiguous
                # staging -- value- and layout-identical to the grouped
                # engine's ascontiguousarray copies.
                np.copyto(cg.a64, gemm.op_a(a))
                np.copyto(cg.b64, gemm.op_b(b))
                out: Optional[np.ndarray] = None
                for prog in cg.programs:
                    acc = prog.acc
                    acc.fill(0.0)
                    for k0, k_hi in prog.chunks:
                        np.matmul(cg.a64[:, k0:k_hi], cg.b64[k0:k_hi, :], out=cg.tmp)
                        np.add(acc, cg.tmp, out=acc)
                    # Elementwise alpha/beta epilogue in float64; the
                    # per-element arithmetic and the final cast match
                    # the grouped engine bit for bit.
                    np.copyto(cg.c64, c)
                    np.multiply(acc, gemm.alpha, out=cg.e64)
                    np.multiply(cg.c64, gemm.beta, out=cg.c64)
                    np.add(cg.e64, cg.c64, out=cg.e64)
                    if prog.scatter is None:
                        out = cg.e64.astype(c.dtype)  # the output allocation
                    else:
                        if out is None:
                            out = np.empty((cg.m, cg.n), dtype=c.dtype)
                        flat = out.reshape(-1)
                        flat[prog.scatter] = cg.e64.reshape(-1)[
                            prog.scatter
                        ].astype(c.dtype)
                assert out is not None  # coverage guaranteed at compile
                outputs.append(out)
        return outputs


def _compile(schedule: BatchSchedule, batch: GemmBatch) -> CompiledPlan:
    plan = lower_schedule(schedule, batch)
    _check_coverage(plan, batch)  # once, at compile -- never per call

    by_gemm: dict[int, dict[int, list]] = {}
    for group in plan.groups:
        strat = strategy_by_index(group.strategy_index)
        by_gemm.setdefault(group.gemm_index, {}).setdefault(strat.bk, []).append(
            group
        )

    compiled: list[CompiledGemm] = []
    for gi, gemm in enumerate(batch):
        m, n, k = gemm.m, gemm.n, gemm.k
        bk_groups = by_gemm.get(gi, {})
        programs: list[ChunkProgram] = []
        single_bk = len(bk_groups) == 1
        for bk in sorted(bk_groups):
            chunks = tuple(
                (k0, min(k0 + bk, k)) for k0 in range(0, k, bk)
            )
            scatter: Optional[np.ndarray] = None
            if not single_bk:
                # Flat element indices of every output element covered
                # by this BK's tiles (disjoint across BKs: coverage is
                # exactly-once).
                idx_parts = []
                for group in bk_groups[bk]:
                    strat = strategy_by_index(group.strategy_index)
                    for y0, x0 in zip(group.y0, group.x0):
                        y_hi = min(int(y0) + strat.by, m)
                        x_hi = min(int(x0) + strat.bx, n)
                        rows = np.arange(int(y0), y_hi, dtype=np.int64)
                        cols = np.arange(int(x0), x_hi, dtype=np.int64)
                        idx_parts.append(
                            (rows[:, None] * n + cols[None, :]).reshape(-1)
                        )
                scatter = np.concatenate(idx_parts) if idx_parts else np.empty(
                    0, dtype=np.int64
                )
            programs.append(
                ChunkProgram(
                    bk=bk,
                    chunks=chunks,
                    scatter=scatter,
                    acc=np.zeros((m, n), dtype=np.float64),
                )
            )
        compiled.append(
            CompiledGemm(
                gemm_index=gi,
                m=m,
                n=n,
                k=k,
                programs=tuple(programs),
                a64=np.empty((m, k), dtype=np.float64),
                b64=np.empty((k, n), dtype=np.float64),
                tmp=np.empty((m, n), dtype=np.float64),
                c64=np.empty((m, n), dtype=np.float64),
                e64=np.empty((m, n), dtype=np.float64),
            )
        )
    return CompiledPlan(
        num_tiles=plan.num_tiles,
        batch_token=plan.batch_token,
        gemms=tuple(compiled),
    )


def compile_plan(schedule: BatchSchedule, batch: GemmBatch) -> CompiledPlan:
    """Compile a schedule into a fresh :class:`CompiledPlan` artifact.

    Validates id ranges and exactly-once coverage (raising the same
    ``IndexError`` / ``ValueError`` the grouped engine would raise per
    execution), then flattens chunk tables, gather/scatter indices and
    scratch buffers.  Emits a ``compile.plan`` span.
    """
    tracer = get_tracer()
    with tracer.span(
        "compile.plan", tiles=schedule.num_tiles, gemms=len(batch)
    ) as span:
        artifact = _compile(schedule, batch)
        tracer.counter("compile.plans", 1)
        if span.enabled:
            span.set_attr("chunks", artifact.num_chunks)
            span.set_attr("scratch_bytes", artifact.scratch_bytes)
    return artifact


#: Process-wide memo of compiled artifacts (bounded; schedule-weakref).
_COMPILED_MEMO = PlanMemo(capacity=256, name="compiled")


def compiled_plan_for(schedule: BatchSchedule, batch: GemmBatch) -> CompiledPlan:
    """The memoized compiled artifact of a schedule (compile on miss).

    Keyed by schedule identity and batch shapes in a bounded weakref
    :class:`~repro.kernels.memo.PlanMemo`: schedules held by a
    :class:`~repro.core.plancache.PlanCache` keep their artifact warm,
    and evicted schedules release theirs.  Emits ``compile.cache_hits``
    / ``compile.cache_misses`` counters, so a serve smoke test can
    assert a warm hot path does zero compilation.
    """
    token = _batch_token(batch)
    tracer = get_tracer()
    cached = _COMPILED_MEMO.get(schedule, token)
    if cached is not None:
        tracer.counter("compile.cache_hits")
        return cached
    tracer.counter("compile.cache_misses")
    before = _COMPILED_MEMO.stats.evictions
    artifact = _COMPILED_MEMO.put(schedule, token, compile_plan(schedule, batch))
    evicted = _COMPILED_MEMO.stats.evictions - before
    if evicted:
        tracer.counter("compile.evictions", evicted)
    return artifact


def compiled_memo_stats() -> MemoStats:
    """Hit/miss/eviction counters of the compiled-artifact memo."""
    return _COMPILED_MEMO.stats_snapshot()


def clear_compiled_memo() -> None:
    """Drop every memoized artifact (tests and long-lived processes)."""
    _COMPILED_MEMO.clear()


def execute_compiled(
    schedule: BatchSchedule,
    batch: GemmBatch,
    operands: Sequence[tuple[np.ndarray, np.ndarray, np.ndarray]],
    plan: Optional[CompiledPlan] = None,
) -> list[np.ndarray]:
    """Execute a batch schedule through its compiled artifact.

    Drop-in for :func:`repro.kernels.grouped.execute_grouped`
    (bit-identical outputs; inputs are not modified).  ``plan``
    optionally supplies a pre-compiled artifact; by default the
    memoized artifact of the schedule is used (compiled on first
    execution).
    """
    if plan is None or plan.batch_token != _batch_token(batch):
        plan = compiled_plan_for(schedule, batch)
    tracer = get_tracer()
    with tracer.span(
        "execute.compiled",
        tiles=plan.num_tiles,
        gemms=len(batch),
    ):
        tracer.counter("tiles_executed", plan.num_tiles)
        return plan.run(batch, operands)
