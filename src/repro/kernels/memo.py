"""Bounded weakref memoization of lowered execution artifacts.

The grouped and compiled engines both derive a per-schedule artifact
(a :class:`~repro.kernels.grouped.GroupedPlan`, a
:class:`~repro.kernels.compiled.CompiledPlan`) that depends only on
the schedule and the batch *shapes*.  Re-deriving it per execution
would reintroduce exactly the per-call plan-walking cost the artifact
exists to remove, so each engine memoizes its artifact per schedule.

Earlier revisions stashed the artifact as an attribute on the (frozen
but not slotted) schedule object.  That coupling had two problems in
long-lived serve processes: the artifact's lifetime was invisible (no
bound, no eviction, no stats), and a schedule executed against many
distinct batch shapes thrashed the single stashed slot.  This module
replaces the stash with :class:`PlanMemo`:

* entries are keyed by the *identity* of the schedule object plus the
  batch-shape token the artifact was lowered for;
* the schedule is held **weakly** -- when a schedule falls out of the
  :class:`~repro.core.plancache.PlanCache` (eviction, ``clear()``) and
  dies, its artifacts are purged automatically instead of leaking;
* the memo is LRU-bounded (``capacity``), thread-safe, and exposes
  hit/miss/eviction counters so cache behaviour is observable.

One memo instance per engine module keeps the engines independently
importable (no shared registry import between ``grouped`` and
``compiled``).
"""

from __future__ import annotations

import threading
import weakref
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Optional

__all__ = ["MemoStats", "PlanMemo"]


@dataclass
class MemoStats:
    """Hit/miss/eviction counters for one :class:`PlanMemo`."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    def as_dict(self) -> dict:
        """JSON-compatible snapshot (what benchmarks and tests read)."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
        }


class PlanMemo:
    """An LRU memo of per-schedule artifacts with weakly-held keys.

    Parameters
    ----------
    capacity:
        Maximum live entries; least-recently-used entries evict first.
    name:
        Label used in ``repr`` and telemetry emitted by callers.

    Keys are ``(schedule, token)`` pairs where ``token`` captures the
    batch shapes the artifact is valid for.  The schedule is referenced
    weakly: a dead schedule's entry is removed by the weakref callback,
    and ``id()`` recycling is guarded by re-checking the referent on
    every lookup.
    """

    def __init__(self, capacity: int = 256, name: str = "plan"):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.name = name
        self.stats = MemoStats()
        # id(schedule) -> (weakref to schedule, batch token, artifact)
        self._entries: "OrderedDict[int, tuple[weakref.ref, tuple, Any]]" = (
            OrderedDict()
        )
        # RLock, not Lock: a GC-triggered weakref callback may run on a
        # thread that already holds the lock (e.g. while an OrderedDict
        # operation inside put() allocates); a plain Lock would deadlock.
        self._lock = threading.RLock()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"PlanMemo(name={self.name!r}, size={len(self)}, "
            f"capacity={self.capacity})"
        )

    def get(self, schedule: Any, token: tuple) -> Optional[Any]:
        """The memoized artifact for ``(schedule, token)``, or ``None``.

        Counts a hit or a miss; a stale entry (the schedule's ``id``
        was recycled by a new object, or the same schedule was last
        lowered for different batch shapes) is dropped and counted as
        a miss.
        """
        key = id(schedule)
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                ref, tok, artifact = entry
                if ref() is schedule and tok == token:
                    self._entries.move_to_end(key)
                    self.stats.hits += 1
                    return artifact
                del self._entries[key]
            self.stats.misses += 1
            return None

    def put(self, schedule: Any, token: tuple, artifact: Any) -> Any:
        """Memoize ``artifact`` for ``(schedule, token)``; returns it.

        Two threads racing on a cold schedule both derive and the later
        ``put`` wins -- the artifacts are identical (they depend only on
        the schedule and the shapes), mirroring the plan cache's
        plan-outside-the-lock policy.
        """
        key = id(schedule)
        self_ref = weakref.ref(self)

        def _purge(_dead: weakref.ref, _key: int = key) -> None:
            memo = self_ref()
            if memo is not None:
                with memo._lock:
                    memo._entries.pop(_key, None)

        with self._lock:
            self._entries[key] = (weakref.ref(schedule, _purge), token, artifact)
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.stats.evictions += 1
        return artifact

    def stats_snapshot(self) -> MemoStats:
        """A consistent copy of the counters (safe to read under churn)."""
        with self._lock:
            return MemoStats(
                hits=self.stats.hits,
                misses=self.stats.misses,
                evictions=self.stats.evictions,
            )

    def discard(self, schedule: Any) -> None:
        """Drop the entry for ``schedule``, if any (no stats change).

        Lets a caller invalidate an artifact it can no longer trust --
        e.g. the procpool engine fencing off an arena whose slabs a
        straggling worker may still write.
        """
        with self._lock:
            self._entries.pop(id(schedule), None)

    def clear(self) -> None:
        """Drop every entry (statistics are kept)."""
        with self._lock:
            self._entries.clear()
