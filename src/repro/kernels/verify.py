"""Tolerance-bounded output verification for mixed-precision runs.

Two contracts, selected by the precision the batch executed under:

* **fp32 -- bit-exact.**  Every engine accumulates each tile's
  product in FP64 over BK-sized chunks in ascending-K order, so all
  engines produce byte-identical outputs; the verifier replays the
  schedule through the ``reference`` engine (the persistent-threads
  Figure 7 walk) and demands ``array_equal`` per GEMM.  Any mismatch
  is a planning or indexing bug, never rounding.
* **fp16 / bf16 -- tolerance-bounded.**  Operands were staged on the
  storage grid, so the exact answer *for what the device stored* is
  the FP64 epilogue ``alpha * op(A) @ op(B) + beta * C`` over the
  staged operands; the executed output (rounded to the storage grid
  on the final store) must sit within the precision's per-dtype
  ``atol``/``rtol`` bounds (:attr:`Precision.tolerance`).  A
  violation means an engine dropped or double-counted work -- the
  bound is far wider than one store rounding but far narrower than
  any missing K-chunk.

``verify_outputs`` is the single entry point; ``ExecutionPolicy
(verify=True)`` routes :meth:`CoordinatedFramework.execute` and
:meth:`PlanCache.execute` through it automatically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from repro.core.precision import Precision, PrecisionLike
from repro.core.problem import GemmBatch

__all__ = ["VerificationError", "VerificationReport", "verify_outputs"]


class VerificationError(AssertionError):
    """An executed batch failed its precision's verification contract."""


@dataclass(frozen=True)
class VerificationReport:
    """Outcome of one verification pass.

    ``max_abs_err`` / ``max_rel_err`` are over every element of every
    GEMM (0.0 on the bit-exact path); ``failures`` lists the indices
    of GEMMs that violated the contract.
    """

    precision: Precision
    mode: str  # "bit-exact" or "tolerance"
    checked: int
    atol: float
    rtol: float
    max_abs_err: float = 0.0
    max_rel_err: float = 0.0
    failures: tuple[int, ...] = field(default_factory=tuple)

    @property
    def ok(self) -> bool:
        """Whether every GEMM satisfied the contract."""
        return not self.failures

    def to_dict(self) -> dict:
        """JSON-compatible summary (bench records, health endpoints)."""
        return {
            "precision": self.precision.value,
            "mode": self.mode,
            "checked": self.checked,
            "atol": self.atol,
            "rtol": self.rtol,
            "max_abs_err": self.max_abs_err,
            "max_rel_err": self.max_rel_err,
            "failures": list(self.failures),
            "ok": self.ok,
        }


def _exact_outputs(batch: GemmBatch, operands) -> list[np.ndarray]:
    """FP64 epilogue over the staged operands (the tolerance oracle)."""
    outs = []
    for gemm, (a, b, c) in zip(batch, operands):
        product = gemm.op_a(a).astype(np.float64) @ gemm.op_b(b).astype(np.float64)
        outs.append(gemm.alpha * product + gemm.beta * c.astype(np.float64))
    return outs


def verify_outputs(
    batch: GemmBatch,
    operands: Sequence,
    outputs: Sequence[np.ndarray],
    precision: PrecisionLike,
    *,
    schedule=None,
    raise_on_failure: bool = False,
) -> VerificationReport:
    """Check executed outputs against the precision's contract.

    ``operands`` must be the *staged* operands the engines consumed
    (post-quantization for fp16/bf16).  For fp32 a ``schedule`` is
    required: the bit-exact oracle is the ``reference`` engine replay
    of that schedule.  For reduced precisions the oracle is the FP64
    epilogue over the staged operands and ``schedule`` is unused.

    Returns a :class:`VerificationReport`; with
    ``raise_on_failure=True`` a violated contract raises
    :class:`VerificationError` instead.
    """
    prec = Precision.coerce(precision)
    if len(outputs) != len(batch):
        raise ValueError(
            f"got {len(outputs)} outputs for a batch of {len(batch)} GEMMs"
        )
    atol, rtol = prec.tolerance

    if prec is Precision.FP32:
        if schedule is None:
            raise ValueError(
                "fp32 verification is bit-exact against the reference engine "
                "and needs the executed schedule; pass schedule="
            )
        from repro.kernels.persistent import execute_schedule

        want = execute_schedule(schedule, batch, operands)
        failures = tuple(
            i
            for i, (got, ref) in enumerate(zip(outputs, want))
            if not np.array_equal(got, ref)
        )
        report = VerificationReport(
            precision=prec,
            mode="bit-exact",
            checked=len(batch),
            atol=atol,
            rtol=rtol,
            failures=failures,
        )
    else:
        exact = _exact_outputs(batch, operands)
        failures = []
        max_abs = 0.0
        max_rel = 0.0
        for i, (got, ref) in enumerate(zip(outputs, exact)):
            got64 = np.asarray(got, dtype=np.float64)
            abs_err = np.abs(got64 - ref)
            if abs_err.size:
                max_abs = max(max_abs, float(abs_err.max()))
                denom = np.maximum(np.abs(ref), 1e-30)
                max_rel = max(max_rel, float((abs_err / denom).max()))
            if not np.allclose(got64, ref, atol=atol, rtol=rtol):
                failures.append(i)
        report = VerificationReport(
            precision=prec,
            mode="tolerance",
            checked=len(batch),
            atol=atol,
            rtol=rtol,
            max_abs_err=max_abs,
            max_rel_err=max_rel,
            failures=tuple(failures),
        )

    if raise_on_failure and not report.ok:
        raise VerificationError(
            f"{prec.value} verification failed for GEMM(s) "
            f"{list(report.failures)} of {report.checked} "
            f"({report.mode}; max_abs={report.max_abs_err:.3e}, "
            f"max_rel={report.max_rel_err:.3e}, atol={atol}, rtol={rtol})"
        )
    return report
