"""Strided batched GEMM: the ``cublasGemmStridedBatched`` layout.

Uniform batches in deep-learning frameworks rarely arrive as Python
lists of matrices; they are 3-D tensors with a fixed stride between
consecutive problem instances.  This module adapts that layout to the
framework's executors: split the tensors into per-GEMM views (no
copies), run any schedule, and reassemble the 3-D output.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.problem import GemmBatch
from repro.core.schedule import BatchSchedule
from repro.telemetry import get_tracer


def split_strided(
    batch: GemmBatch,
    a: np.ndarray,
    b: np.ndarray,
    c: np.ndarray,
) -> list[tuple[np.ndarray, np.ndarray, np.ndarray]]:
    """Views of a strided-batch operand triple, one per GEMM.

    ``a``/``b``/``c`` have shapes ``(B, m, k)``, ``(B, k, n)``,
    ``(B, m, n)`` (or the transposed stored layouts when the batch's
    GEMMs carry ``trans_a``/``trans_b``); the batch must be uniform.
    Returned tuples are views -- zero copy.
    """
    if not batch.is_uniform:
        raise ValueError(
            "strided batched GEMM requires a uniform batch "
            "(use per-GEMM operand lists for variable sizes)"
        )
    g = batch[0]
    n_batch = len(batch)
    expected = {
        "A": (n_batch, *g.a_shape),
        "B": (n_batch, *g.b_shape),
        "C": (n_batch, g.m, g.n),
    }
    for name, (arr, shape) in zip(expected, ((a, expected["A"]), (b, expected["B"]), (c, expected["C"]))):
        if arr.shape != shape:
            raise ValueError(f"{name} has shape {arr.shape}, expected {shape}")
    return [(a[i], b[i], c[i]) for i in range(n_batch)]


def execute_schedule_strided(
    schedule: BatchSchedule,
    batch: GemmBatch,
    a: np.ndarray,
    b: np.ndarray,
    c: np.ndarray,
    *,
    policy: Optional[object] = None,
) -> np.ndarray:
    """Run a schedule on strided-batch operands; returns ``(B, m, n)``.

    ``policy`` -- an :class:`~repro.kernels.ExecutionPolicy` or engine
    name -- selects the executor through the shared engine registry;
    the default keeps this adapter on the ``reference`` per-slot walk
    (its historical behaviour).  All engines are bit-identical, so the
    choice only changes speed.
    """
    from repro.kernels.engine import get_engine_object
    from repro.kernels.policy import ExecutionPolicy

    pol = (
        ExecutionPolicy(engine="reference")
        if policy is None
        else ExecutionPolicy.of(policy, warn_on_str=False)
    )
    run = get_engine_object(pol.engine).runner(
        pol.workers if get_engine_object(pol.engine).capabilities.workers else None
    )
    with get_tracer().span("execute.strided", gemms=len(batch), engine=pol.engine):
        operands = split_strided(batch, a, b, c)
        outputs = run(schedule, batch, operands)
        return np.stack(outputs)


def random_strided_operands(
    batch: GemmBatch,
    rng: np.random.Generator | None = None,
    dtype: type = np.float32,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Random ``(A, B, C)`` tensors in the strided layout."""
    if not batch.is_uniform:
        raise ValueError("strided operands require a uniform batch")
    rng = rng if rng is not None else np.random.default_rng()
    g = batch[0]
    n_batch = len(batch)
    a = rng.standard_normal((n_batch, *g.a_shape)).astype(dtype)
    b = rng.standard_normal((n_batch, *g.b_shape)).astype(dtype)
    c = rng.standard_normal((n_batch, g.m, g.n)).astype(dtype)
    return a, b, c
