"""The single-GEMM tiled kernel of Figure 2, functionally in NumPy.

The CUDA kernel partitions C into ``BY x BX`` tiles, and each block
marches along the K dimension ``BK`` elements at a time: stage an A
tile and a B tile into shared memory, multiply-accumulate into register
sub-tiles, repeat, write back.  ``compute_tile`` reproduces that walk
exactly -- including the staging buffers (zero-padded to the full tile
shape, like a shared-memory buffer with bounds-checked loads) -- and
``thread_level_tile`` additionally decomposes a tile into the
per-thread register sub-tiles of Figure 5, validating the thread
mapping the tiling strategies define.
"""

from __future__ import annotations

import numpy as np

from repro.core.tiling import TilingStrategy


def compute_tile(
    a: np.ndarray,
    b: np.ndarray,
    y0: int,
    x0: int,
    by: int,
    bx: int,
    bk: int,
    k_limit: int | None = None,
) -> np.ndarray:
    """Accumulate one C tile along K, BK elements per step.

    Returns the ``by x bx`` accumulator (zero-padded past the matrix
    edge, as the predicated CUDA kernel leaves those lanes at zero).
    ``k_limit`` truncates the reduction (used by tests that split the
    K walk).
    """
    m, k = a.shape
    k2, n = b.shape
    if k != k2:
        raise ValueError(f"inner dimensions differ: A is {a.shape}, B is {b.shape}")
    if y0 < 0 or x0 < 0:
        raise ValueError("tile origin must be non-negative")
    if y0 >= m or x0 >= n:
        raise ValueError(f"tile origin ({y0},{x0}) outside matrix {m}x{n}")
    k_stop = k if k_limit is None else min(k, k_limit)

    acc = np.zeros((by, bx), dtype=np.float64)
    y_hi = min(y0 + by, m)
    x_hi = min(x0 + bx, n)
    interior = y_hi - y0 == by and x_hi - x0 == bx
    # Main loop along the K dimension (Figure 2, lines 12-24).
    for k0 in range(0, k_stop, bk):
        k_hi = min(k0 + bk, k_stop)
        if interior:
            # Fully interior tile: no bounds-checked staging needed;
            # the float64 casts are exact, so this is bit-identical to
            # the padded path below.
            acc += a[y0:y_hi, k0:k_hi].astype(np.float64) @ b[
                k0:k_hi, x0:x_hi
            ].astype(np.float64)
            continue
        # Stage A and B tiles into "shared memory" buffers, zero-padded
        # to the full tile shape (bounds-checked loads).
        sh_a = np.zeros((by, k_hi - k0), dtype=np.float64)
        sh_b = np.zeros((k_hi - k0, bx), dtype=np.float64)
        sh_a[: y_hi - y0, :] = a[y0:y_hi, k0:k_hi]
        sh_b[:, : x_hi - x0] = b[k0:k_hi, x0:x_hi]
        acc += sh_a @ sh_b
    return acc


def thread_level_tile(
    a: np.ndarray,
    b: np.ndarray,
    y0: int,
    x0: int,
    strategy: TilingStrategy,
    k_limit: int | None = None,
) -> np.ndarray:
    """Compute one tile thread-by-thread, sub-tile-by-sub-tile.

    Each of the strategy's ``threads`` threads owns a ``sub_y x sub_x``
    register sub-tile; threads are laid out row-major over the
    ``(BY/sub_y) x (BX/sub_x)`` sub-tile grid (Figure 5).  The result
    must equal :func:`compute_tile` exactly -- the equality is a unit
    test of the strategy tables' internal consistency.
    """
    s = strategy
    rows = s.by // s.sub_y
    cols = s.bx // s.sub_x
    if rows * cols != s.threads:
        raise ValueError(f"strategy {s} sub-tile grid does not cover the tile")
    acc = np.zeros((s.by, s.bx), dtype=np.float64)
    m, k = a.shape
    _, n = b.shape
    k_stop = k if k_limit is None else min(k, k_limit)
    y_hi = min(y0 + s.by, m)
    x_hi = min(x0 + s.bx, n)

    for k0 in range(0, k_stop, s.bk):
        k_hi = min(k0 + s.bk, k_stop)
        sh_a = np.zeros((s.by, k_hi - k0), dtype=np.float64)
        sh_b = np.zeros((k_hi - k0, s.bx), dtype=np.float64)
        sh_a[: y_hi - y0, :] = a[y0:y_hi, k0:k_hi]
        sh_b[:, : x_hi - x0] = b[k0:k_hi, x0:x_hi]
        for tid in range(s.threads):
            ty, tx = divmod(tid, cols)
            ry = ty * s.sub_y
            rx = tx * s.sub_x
            # reg_C += reg_A @ reg_B (Figure 2 line 17, FMA loop).
            acc[ry : ry + s.sub_y, rx : rx + s.sub_x] += (
                sh_a[ry : ry + s.sub_y, :] @ sh_b[:, rx : rx + s.sub_x]
            )
    return acc


def tiled_gemm(
    a: np.ndarray,
    b: np.ndarray,
    c: np.ndarray,
    strategy: TilingStrategy,
    alpha: float = 1.0,
    beta: float = 0.0,
    thread_level: bool = False,
) -> np.ndarray:
    """Full single-GEMM execution with one tiling strategy.

    Walks every tile of the grid (each standing for one thread block),
    computes it with :func:`compute_tile` (or the slower
    :func:`thread_level_tile` when ``thread_level`` is set), and
    applies the alpha/beta epilogue.  Inputs are not modified.
    """
    m, k = a.shape
    k2, n = b.shape
    if k != k2 or c.shape != (m, n):
        raise ValueError(
            f"shape mismatch: A {a.shape}, B {b.shape}, C {c.shape}"
        )
    out = np.empty_like(c)
    s = strategy
    for y0 in range(0, m, s.by):
        for x0 in range(0, n, s.bx):
            if thread_level:
                acc = thread_level_tile(a, b, y0, x0, s)
            else:
                acc = compute_tile(a, b, y0, x0, s.by, s.bx, s.bk)
            y_hi = min(y0 + s.by, m)
            x_hi = min(x0 + s.bx, n)
            valid = acc[: y_hi - y0, : x_hi - x0]
            out[y0:y_hi, x0:x_hi] = (
                alpha * valid + beta * c[y0:y_hi, x0:x_hi].astype(np.float64)
            ).astype(c.dtype)
    return out
