"""Functional GEMM executors.

These mirror the CUDA kernels of the paper in NumPy so that every
schedule the framework emits can be executed *numerically* and checked
against a reference -- a planning or indexing bug becomes a wrong
answer, not just a wrong simulated time.

* :mod:`repro.kernels.reference` -- plain NumPy GEMM / batched GEMM.
* :mod:`repro.kernels.tiled` -- the single-GEMM tiled kernel of
  Figure 2 (staging buffers standing in for shared memory, per-thread
  register sub-tiles).
* :mod:`repro.kernels.persistent` -- the persistent-threads batched
  kernel of Figure 7, driven by the five auxiliary arrays (the
  ``reference`` execution engine, and the oracle).
* :mod:`repro.kernels.grouped` -- the grouped vectorized engine: the
  same schedule lowered to bulk batched-matmul groups (the ``grouped``
  execution engine; bit-identical to the reference, much faster).
* :mod:`repro.kernels.parallel` -- the multi-worker engine: the same
  lowered plan sharded across a thread pool with Stream-K-style
  even-share load balancing (the ``parallel`` execution engine;
  bit-identical to ``grouped`` at every worker count).

Submodules are imported lazily (PEP 562) so that the execution
engines stay importable without each other -- ``import
repro.kernels.grouped`` must not drag in ``repro.kernels.persistent``
or vice versa, and ``repro.kernels.parallel`` (which builds on
``grouped``) must not drag in ``persistent`` either (CI guards this).
Use :func:`get_engine` to resolve an engine name to its executor
callable.
"""

from __future__ import annotations

from typing import Optional

#: The recognized execution-engine names.
ENGINES: tuple[str, ...] = ("reference", "grouped", "parallel")

#: Degradation order per engine: itself first, then progressively
#: simpler engines ending at the per-slot reference walk (the oracle).
#: Every engine is bit-identical, so falling back trades only speed.
ENGINE_FALLBACKS: dict[str, tuple[str, ...]] = {
    "parallel": ("parallel", "grouped", "reference"),
    "grouped": ("grouped", "reference"),
    "reference": ("reference",),
}

_EXPORTS = {
    "reference_gemm": ("repro.kernels.reference", "reference_gemm"),
    "reference_batched_gemm": ("repro.kernels.reference", "reference_batched_gemm"),
    "tiled_gemm": ("repro.kernels.tiled", "tiled_gemm"),
    "compute_tile": ("repro.kernels.tiled", "compute_tile"),
    "thread_level_tile": ("repro.kernels.tiled", "thread_level_tile"),
    "execute_schedule": ("repro.kernels.persistent", "execute_schedule"),
    "execute_grouped": ("repro.kernels.grouped", "execute_grouped"),
    "lower_schedule": ("repro.kernels.grouped", "lower_schedule"),
    "grouped_plan_for": ("repro.kernels.grouped", "grouped_plan_for"),
    "GroupedPlan": ("repro.kernels.grouped", "GroupedPlan"),
    "TileGroup": ("repro.kernels.grouped", "TileGroup"),
    "execute_parallel": ("repro.kernels.parallel", "execute_parallel"),
    "plan_shards": ("repro.kernels.parallel", "plan_shards"),
    "resolve_workers": ("repro.kernels.parallel", "resolve_workers"),
    "shared_pool": ("repro.kernels.parallel", "shared_pool"),
    "ShardPlan": ("repro.kernels.parallel", "ShardPlan"),
}

__all__ = ["ENGINES", "ENGINE_FALLBACKS", "engine_fallbacks", "get_engine", *_EXPORTS]


def engine_fallbacks(name: str) -> tuple[str, ...]:
    """The fallback chain starting at ``name`` (itself included).

    ``parallel`` degrades to ``grouped`` then ``reference``;
    ``grouped`` to ``reference``; ``reference`` stands alone.  The
    serving layer and :class:`~repro.reliability.ReliableExecutor`
    walk this chain when the preferred engine misbehaves.
    """
    try:
        return ENGINE_FALLBACKS[name]
    except KeyError:
        raise ValueError(
            f"unknown execution engine {name!r}; choose from {ENGINES}"
        ) from None


def get_engine(name: str, workers: Optional[int] = None, injector=None):
    """Resolve an execution-engine name to its executor callable.

    All engines share the signature ``fn(schedule, batch, operands)
    -> list[np.ndarray]`` and produce bit-identical results;
    ``reference`` is the faithful per-slot Figure 7 walk (the oracle),
    ``grouped`` the vectorized bulk engine, ``parallel`` the
    multi-worker sharded engine.  ``workers`` is only meaningful for
    ``parallel`` (the returned callable binds it as its pool size;
    ``None`` defers to :func:`repro.kernels.parallel.resolve_workers`)
    and raises ``ValueError`` for any other engine -- a silently
    ignored worker count would misreport what ran.  Raises
    ``ValueError`` for unknown names.

    ``injector`` is an optional
    :class:`~repro.reliability.FaultInjector` (anything with a
    ``check(site, engine=...)`` method): the returned callable
    evaluates the ``"engine"`` fault site before every execution, so
    chaos tests can make any engine fail or stall deterministically.
    """
    run = _resolve_engine(name, workers)
    if injector is None:
        return run

    def run_with_faults(schedule, batch, operands, *args, **kwargs):
        injector.check("engine", engine=name)
        return run(schedule, batch, operands, *args, **kwargs)

    run_with_faults.__name__ = f"{run.__name__}_faulted"
    run_with_faults.engine = name
    return run_with_faults


def _resolve_engine(name: str, workers: Optional[int] = None):
    if name == "parallel":
        from repro.kernels.parallel import execute_parallel, resolve_workers

        if workers is None:
            return execute_parallel
        workers = resolve_workers(workers)

        def run_parallel(schedule, batch, operands, plan=None):
            return execute_parallel(schedule, batch, operands, plan, workers=workers)

        run_parallel.__name__ = f"execute_parallel_{workers}w"
        run_parallel.workers = workers
        return run_parallel
    if workers is not None:
        raise ValueError(
            f"workers= only applies to the 'parallel' engine, not {name!r}"
        )
    if name == "reference":
        from repro.kernels.persistent import execute_schedule

        return execute_schedule
    if name == "grouped":
        from repro.kernels.grouped import execute_grouped

        return execute_grouped
    raise ValueError(f"unknown execution engine {name!r}; choose from {ENGINES}")


def __getattr__(name: str):
    try:
        module_name, attr = _EXPORTS[name]
    except KeyError:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}") from None
    import importlib

    value = getattr(importlib.import_module(module_name), attr)
    globals()[name] = value  # cache for subsequent lookups
    return value


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(__all__))
