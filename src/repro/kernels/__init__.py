"""Functional GEMM executors.

These mirror the CUDA kernels of the paper in NumPy so that every
schedule the framework emits can be executed *numerically* and checked
against a reference -- a planning or indexing bug becomes a wrong
answer, not just a wrong simulated time.

* :mod:`repro.kernels.reference` -- plain NumPy GEMM / batched GEMM.
* :mod:`repro.kernels.tiled` -- the single-GEMM tiled kernel of
  Figure 2 (staging buffers standing in for shared memory, per-thread
  register sub-tiles).
* :mod:`repro.kernels.persistent` -- the persistent-threads batched
  kernel of Figure 7, driven by the five auxiliary arrays (the
  ``reference`` execution engine, and the oracle).
* :mod:`repro.kernels.grouped` -- the grouped vectorized engine: the
  same schedule lowered to bulk batched-matmul groups (the ``grouped``
  execution engine; bit-identical to the reference, much faster).
* :mod:`repro.kernels.parallel` -- the multi-worker engine: the same
  lowered plan sharded across a thread pool with Stream-K-style
  even-share load balancing (the ``parallel`` execution engine;
  bit-identical to ``grouped`` at every worker count).
* :mod:`repro.kernels.compiled` -- the compiled-plan engine: the
  schedule lowered once into a flat :class:`CompiledPlan` artifact
  with preallocated scratch, executed by a minimal allocation-free
  interpreter loop (the ``compiled`` execution engine; bit-identical
  to ``grouped``, fastest steady state).
* :mod:`repro.kernels.procpool` -- the process-pool engine: the same
  lowered plan sharded across persistent worker *processes* reading
  operands from shared-memory arenas (the ``procpool`` execution
  engine; true multi-core, bit-identical to ``grouped`` at every
  worker count, serial below its break-even FLOP threshold).

Engine identity lives in the typed registry
(:mod:`repro.kernels.engine` -- the :class:`Engine` protocol,
``ENGINES``, ``ENGINE_FALLBACKS``) and execution configuration in
:class:`~repro.kernels.policy.ExecutionPolicy`; both are stdlib-only
and re-exported eagerly here.  Kernel submodules are imported lazily
(PEP 562) so the engines stay importable without each other --
``import repro.kernels.grouped`` must not drag in
``repro.kernels.persistent`` or vice versa, and both
``repro.kernels.parallel`` and ``repro.kernels.compiled`` (which
build on ``grouped``) must not drag in ``persistent`` either (CI
guards this).  Use :func:`get_engine` to resolve an engine name to
its executor callable, or :func:`get_engine_object` for the typed
:class:`Engine`.
"""

from __future__ import annotations

from typing import Optional

from repro.kernels.engine import (
    ENGINES,
    ENGINE_FALLBACKS,
    WORKER_ENGINES,
    Engine,
    EngineCapabilities,
    engine_accepts_workers,
    engine_fallbacks,
    get_engine_object,
)
from repro.kernels.policy import ExecutionPolicy, coerce_policy

_EXPORTS = {
    "reference_gemm": ("repro.kernels.reference", "reference_gemm"),
    "reference_batched_gemm": ("repro.kernels.reference", "reference_batched_gemm"),
    "tiled_gemm": ("repro.kernels.tiled", "tiled_gemm"),
    "compute_tile": ("repro.kernels.tiled", "compute_tile"),
    "thread_level_tile": ("repro.kernels.tiled", "thread_level_tile"),
    "execute_schedule": ("repro.kernels.persistent", "execute_schedule"),
    "execute_grouped": ("repro.kernels.grouped", "execute_grouped"),
    "lower_schedule": ("repro.kernels.grouped", "lower_schedule"),
    "grouped_plan_for": ("repro.kernels.grouped", "grouped_plan_for"),
    "GroupedPlan": ("repro.kernels.grouped", "GroupedPlan"),
    "TileGroup": ("repro.kernels.grouped", "TileGroup"),
    "execute_parallel": ("repro.kernels.parallel", "execute_parallel"),
    "plan_shards": ("repro.kernels.parallel", "plan_shards"),
    "resolve_workers": ("repro.kernels.parallel", "resolve_workers"),
    "shared_pool": ("repro.kernels.parallel", "shared_pool"),
    "ShardPlan": ("repro.kernels.parallel", "ShardPlan"),
    "execute_procpool": ("repro.kernels.procpool", "execute_procpool"),
    "resolve_procpool_workers": (
        "repro.kernels.procpool",
        "resolve_procpool_workers",
    ),
    "shared_procpool": ("repro.kernels.procpool", "shared_procpool"),
    "procpool_status": ("repro.kernels.procpool", "procpool_status"),
    "ProcpoolWorkerDied": ("repro.kernels.procpool", "ProcpoolWorkerDied"),
    "execute_compiled": ("repro.kernels.compiled", "execute_compiled"),
    "compile_plan": ("repro.kernels.compiled", "compile_plan"),
    "compiled_plan_for": ("repro.kernels.compiled", "compiled_plan_for"),
    "CompiledPlan": ("repro.kernels.compiled", "CompiledPlan"),
    "CompiledGemm": ("repro.kernels.compiled", "CompiledGemm"),
    "PlanMemo": ("repro.kernels.memo", "PlanMemo"),
    "MemoStats": ("repro.kernels.memo", "MemoStats"),
    "verify_outputs": ("repro.kernels.verify", "verify_outputs"),
    "VerificationError": ("repro.kernels.verify", "VerificationError"),
    "VerificationReport": ("repro.kernels.verify", "VerificationReport"),
}

__all__ = [
    "ENGINES",
    "ENGINE_FALLBACKS",
    "WORKER_ENGINES",
    "Engine",
    "EngineCapabilities",
    "ExecutionPolicy",
    "coerce_policy",
    "engine_accepts_workers",
    "engine_fallbacks",
    "get_engine",
    "get_engine_object",
    *_EXPORTS,
]


def get_engine(name: str, workers: Optional[int] = None, injector=None):
    """Resolve an execution-engine name to its executor callable.

    All engines share the signature ``fn(schedule, batch, operands)
    -> list[np.ndarray]`` and produce bit-identical results;
    ``reference`` is the faithful per-slot Figure 7 walk (the oracle),
    ``grouped`` the vectorized bulk engine, ``parallel`` the
    multi-worker thread-sharded engine, ``compiled`` the
    precompiled-artifact interpreter, ``procpool`` the process-pool
    engine over shared-memory arenas.  ``workers`` is only meaningful
    for the worker-pool engines (``parallel`` / ``procpool``: the
    returned callable binds it as its pool size; ``None`` defers to
    each engine's resolver) and raises ``ValueError`` for any other
    engine -- a silently ignored worker count would misreport what
    ran.  Raises ``ValueError`` for unknown
    names.  Resolution goes through the typed registry
    (:func:`get_engine_object`); the returned callable preserves the
    historical identities (``get_engine("grouped") is
    execute_grouped`` and so on).

    ``injector`` is an optional
    :class:`~repro.reliability.FaultInjector` (anything with a
    ``check(site, engine=...)`` method): the returned callable
    evaluates the ``"engine"`` fault site before every execution, so
    chaos tests can make any engine fail or stall deterministically.
    """
    run = get_engine_object(name).runner(workers)
    if injector is None:
        return run

    def run_with_faults(schedule, batch, operands, *args, **kwargs):
        injector.check("engine", engine=name)
        return run(schedule, batch, operands, *args, **kwargs)

    run_with_faults.__name__ = f"{run.__name__}_faulted"
    run_with_faults.engine = name
    return run_with_faults


def __getattr__(name: str):
    try:
        module_name, attr = _EXPORTS[name]
    except KeyError:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}") from None
    import importlib

    value = getattr(importlib.import_module(module_name), attr)
    globals()[name] = value  # cache for subsequent lookups
    return value


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(__all__))
