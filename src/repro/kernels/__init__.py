"""Functional GEMM executors.

These mirror the CUDA kernels of the paper in NumPy so that every
schedule the framework emits can be executed *numerically* and checked
against a reference -- a planning or indexing bug becomes a wrong
answer, not just a wrong simulated time.

* :mod:`repro.kernels.reference` -- plain NumPy GEMM / batched GEMM.
* :mod:`repro.kernels.tiled` -- the single-GEMM tiled kernel of
  Figure 2 (staging buffers standing in for shared memory, per-thread
  register sub-tiles).
* :mod:`repro.kernels.persistent` -- the persistent-threads batched
  kernel of Figure 7, driven by the five auxiliary arrays.
"""

from repro.kernels.reference import reference_gemm, reference_batched_gemm
from repro.kernels.tiled import tiled_gemm, compute_tile, thread_level_tile
from repro.kernels.persistent import execute_schedule

__all__ = [
    "reference_gemm",
    "reference_batched_gemm",
    "tiled_gemm",
    "compute_tile",
    "thread_level_tile",
    "execute_schedule",
]
