"""Multi-worker parallel execution engine for batch schedules.

The grouped engine (:mod:`repro.kernels.grouped`) collapsed the
per-tile interpreter overhead into a few bulk NumPy operations, but it
still runs every GEMM of the lowered :class:`GroupedPlan` serially on
one core.  ``np.matmul`` releases the GIL while BLAS runs, so a host
with idle cores leaves real throughput on the table -- exactly the
utilization gap Stream-K (Osama et al., see ``PAPERS.md``) closes on
the device with *work-centric* decomposition: split the aggregate
workload into even shares of work, not into per-problem units.

This module applies that idea host-side.  A lowered plan is decomposed
into **shards** sized by estimated FLOPs:

* one *product shard* per ``(gemm, BK)`` chunk-accumulated full
  product -- and when a single GEMM's product exceeds the even share
  ``total_flops / workers``, it is split along the BK-chunk axis into
  several shards of contiguous ascending chunk ranges (the Stream-K
  move: oversized work units are subdivided until every worker carries
  a comparable share, instead of round-robining whole GEMMs);
* one *epilogue shard* per tile-range slice of each
  :class:`~repro.kernels.grouped.TileGroup`, again split by even
  share when a group is large.

Shards execute on a process-shared
:class:`concurrent.futures.ThreadPoolExecutor` (threads, not
processes: the matmuls drop the GIL, operands are shared zero-copy).

**Bit-exactness contract.**  ``execute_parallel`` is bit-identical to
:func:`repro.kernels.grouped.execute_grouped` (and therefore to the
reference walk) at every worker count.  Floating-point addition is not
associative, so a shard must **not** pre-accumulate its chunk products
into a private partial sum -- ``(c0+c1)+(c2+c3)`` rounds differently
from ``((c0+c1)+c2)+c3``, and on this library's BLAS even row-slicing
a ``(m, BK) @ (BK, n)`` product changes last-bit results (the kernel
selected depends on the operand shape).  Three rules keep the engine
exact:

* a product shard issues the *same full-width per-chunk matmuls* the
  grouped engine issues -- never a reshaped or sliced variant;
* a split product's chunk products are merged into the shared
  accumulator by the coordinating thread in ascending chunk order
  (deterministic shard-merge order), replaying the grouped engine's
  exact addition sequence;
* epilogue shards are elementwise over disjoint output windows, so
  tile-range splitting cannot change any element's arithmetic.

Because every write lands in a disjoint region and the merge order is
fixed, the outputs are also **deterministic**: two runs at any worker
count are byte-identical (CI replays this).

Telemetry is emitted only from the calling thread (the process-global
tracer is not thread-safe): an ``execute.parallel`` span wraps the
run, one ``parallel.shard`` span per shard carries the worker-side
``busy_ms`` measurement as an attribute, and the ``parallel.workers``
/ ``parallel.imbalance`` gauges record the pool size and the
max-over-mean per-worker busy-time ratio (1.0 = perfectly balanced).

This module builds on :mod:`repro.kernels.grouped` (the lowering and
the epilogue are shared) but deliberately never imports
:mod:`repro.kernels.persistent` -- the oracle stays independent.
"""

from __future__ import annotations

import os
import threading
import time
import warnings
from concurrent.futures import FIRST_COMPLETED, Future, ThreadPoolExecutor, wait
from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.core.problem import GemmBatch, validate_operands
from repro.core.schedule import BatchSchedule
from repro.core.tiling import strategy_by_index
from repro.kernels.grouped import (
    GroupedPlan,
    TileGroup,
    _batch_token,
    _check_coverage,
    _epilogue_group,
    grouped_plan_for,
)
from repro.telemetry import get_tracer

#: Auto-sized pools never exceed this many threads (oversubscribing a
#: host with one BLAS-bound thread per core only adds contention).
MAX_AUTO_WORKERS = 8

#: Environment override for the default worker count (used by CI to
#: replay the equivalence suite at fixed pool sizes).
WORKERS_ENV_VAR = "REPRO_PARALLEL_WORKERS"

#: A product split never produces shards smaller than this many BK
#: chunks -- tiny shards pay more dispatch than they parallelize.
MIN_CHUNKS_PER_SHARD = 4

#: An epilogue split never produces shards smaller than this many tiles.
MIN_TILES_PER_SHARD = 8


def resolve_workers(workers: Optional[int] = None) -> int:
    """Normalize a worker-count spec to a concrete pool size.

    ``None`` reads :data:`WORKERS_ENV_VAR` when set, otherwise sizes
    to the host: ``min(cpu_count, MAX_AUTO_WORKERS)``.  A malformed or
    non-positive environment value raises ``ValueError`` naming the
    variable (never a bare ``int()`` traceback); explicit or
    environment counts above ``os.cpu_count()`` are honoured (threads
    share one GIL anyway, and CI replays fixed pool sizes on small
    hosts) but emit a one-shot ``RuntimeWarning``.  Raises
    ``ValueError`` for non-positive counts.
    """
    source = "workers"
    if workers is None:
        env = os.environ.get(WORKERS_ENV_VAR)
        if env:
            source = WORKERS_ENV_VAR
            try:
                workers = int(env)
            except ValueError:
                raise ValueError(
                    f"{WORKERS_ENV_VAR}={env!r} is not a positive integer "
                    f"(set it to a number of worker threads)"
                ) from None
            if workers < 1:
                raise ValueError(
                    f"{WORKERS_ENV_VAR}={env!r} must be a positive integer, "
                    f"got {workers}"
                )
        else:
            workers = min(MAX_AUTO_WORKERS, os.cpu_count() or 1)
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    cpus = os.cpu_count() or 1
    if workers > cpus:
        _warn_oversubscribed(source, workers, cpus)
    return workers


_WARNED_OVERSUBSCRIBED: set = set()


def _warn_oversubscribed(source: str, value: int, cpus: int) -> None:
    key = (source, value)
    if key in _WARNED_OVERSUBSCRIBED:
        return
    _WARNED_OVERSUBSCRIBED.add(key)
    warnings.warn(
        f"{source}={value} oversubscribes this host ({cpus} CPU(s)); "
        f"honouring it, but thread counts above the core count only add "
        f"contention",
        RuntimeWarning,
        stacklevel=3,
    )


_POOLS: dict[int, ThreadPoolExecutor] = {}
_POOLS_LOCK = threading.Lock()


def shared_pool(workers: int) -> ThreadPoolExecutor:
    """The process-shared executor for ``workers`` threads.

    Pools are created lazily and reused for the life of the process --
    one pool per distinct size, shared by every caller (the engine,
    :meth:`PlanCache.warm`, and all of a server's worker threads), so
    repeated executions never pay thread-spawn latency and concurrent
    callers queue into the same bounded pool instead of oversubscribing
    the host.
    """
    workers = resolve_workers(workers)
    with _POOLS_LOCK:
        pool = _POOLS.get(workers)
        if pool is None:
            pool = ThreadPoolExecutor(
                max_workers=workers, thread_name_prefix=f"repro-parallel-{workers}w"
            )
            _POOLS[workers] = pool
        return pool


def shutdown_pools() -> None:
    """Shut down every shared pool (test isolation helper)."""
    with _POOLS_LOCK:
        pools = list(_POOLS.values())
        _POOLS.clear()
    for pool in pools:
        pool.shutdown(wait=True)


# -- work-centric shard planning -------------------------------------


@dataclass(frozen=True)
class ProductShard:
    """A contiguous ascending range of one product's BK chunks.

    ``chunk_lo``/``chunk_hi`` index the BK-chunk axis (chunk ``c``
    covers ``k in [c * bk, min((c+1) * bk, k))``).  ``split`` is False
    when the shard covers the whole product -- it then accumulates
    directly into the shared accumulator; a split shard instead
    returns its chunk products for the coordinator's ordered merge.
    """

    gemm_index: int
    bk: int
    chunk_lo: int
    chunk_hi: int
    split: bool
    flops: float


@dataclass(frozen=True)
class EpilogueShard:
    """A tile-range slice of one epilogue group."""

    gemm_index: int
    group: TileGroup
    tile_lo: int
    tile_hi: int
    cost: float


@dataclass(frozen=True)
class ShardPlan:
    """The work-centric decomposition of one grouped plan.

    A pure function of ``(plan, batch, workers)`` -- deterministic, so
    two executions of the same schedule shard identically.
    """

    workers: int
    products: tuple[ProductShard, ...]
    epilogues: tuple[EpilogueShard, ...]

    @property
    def num_shards(self) -> int:
        return len(self.products) + len(self.epilogues)

    def largest_product_share(self) -> float:
        """Largest product-shard share of total product FLOPs."""
        total = sum(s.flops for s in self.products)
        if not total:
            return 0.0
        return max(s.flops for s in self.products) / total


def plan_shards(plan: GroupedPlan, batch: GemmBatch, workers: int) -> ShardPlan:
    """Decompose a lowered plan into even-share work units.

    Product work is estimated at ``2 m n k`` FLOPs per ``(gemm, BK)``
    product; any product above the even share ``total / workers`` is
    split along the BK-chunk axis into ``ceil(flops / share)`` shards
    of contiguous chunk ranges (never smaller than
    :data:`MIN_CHUNKS_PER_SHARD` chunks).  Epilogue groups are split
    the same way along their tile axis.  With ``workers == 1``
    nothing is split -- the decomposition degenerates to one shard per
    product and per group.
    """
    by_gemm: dict[int, list[TileGroup]] = {}
    for group in plan.groups:
        by_gemm.setdefault(group.gemm_index, []).append(group)

    # Distinct (gemm, bk) products, mirroring the grouped engine's accs.
    product_specs: list[tuple[int, int, float, int]] = []  # gi, bk, flops, n_chunks
    for gi, groups in sorted(by_gemm.items()):
        gemm = batch[gi]
        for bk in sorted({strategy_by_index(g.strategy_index).bk for g in groups}):
            flops = 2.0 * gemm.m * gemm.n * gemm.k
            n_chunks = -(-gemm.k // bk)
            product_specs.append((gi, bk, flops, n_chunks))

    total_flops = sum(f for _, _, f, _ in product_specs)
    share = total_flops / workers if workers > 1 else float("inf")

    products: list[ProductShard] = []
    for gi, bk, flops, n_chunks in product_specs:
        n_shards = 1
        if workers > 1 and flops > share:
            n_shards = min(
                -(-int(flops) // max(1, int(share))),
                max(1, n_chunks // MIN_CHUNKS_PER_SHARD),
                workers,
            )
        if n_shards <= 1:
            products.append(ProductShard(gi, bk, 0, n_chunks, False, flops))
            continue
        base, extra = divmod(n_chunks, n_shards)
        lo = 0
        for i in range(n_shards):
            hi = lo + base + (1 if i < extra else 0)
            products.append(
                ProductShard(gi, bk, lo, hi, True, flops * (hi - lo) / n_chunks)
            )
            lo = hi

    total_tiles = sum(g.size for g in plan.groups)
    tile_share = total_tiles / workers if workers > 1 else float("inf")
    epilogues: list[EpilogueShard] = []
    for gi, groups in sorted(by_gemm.items()):
        for group in groups:
            strat = strategy_by_index(group.strategy_index)
            per_tile = strat.by * strat.bx
            n_shards = 1
            if workers > 1 and group.size > tile_share:
                n_shards = min(
                    -(-group.size // max(1, int(tile_share))),
                    max(1, group.size // MIN_TILES_PER_SHARD),
                    workers,
                )
            base, extra = divmod(group.size, n_shards)
            lo = 0
            for i in range(n_shards):
                hi = lo + base + (1 if i < extra else 0)
                epilogues.append(
                    EpilogueShard(gi, group, lo, hi, float((hi - lo) * per_tile))
                )
                lo = hi
    return ShardPlan(
        workers=workers, products=tuple(products), epilogues=tuple(epilogues)
    )


# -- the engine ------------------------------------------------------


class _GemmCtx:
    """Mutable per-GEMM execution state owned by the coordinator."""

    __slots__ = (
        "a64",
        "b64",
        "accs",
        "chunk_results",
        "merge_next",
        "chunk_counts",
        "products_pending",
        "epilogues_pending",
    )

    def __init__(self) -> None:
        self.a64: Optional[np.ndarray] = None
        self.b64: Optional[np.ndarray] = None
        self.accs: dict[int, np.ndarray] = {}
        # bk -> {chunk_lo: [chunk products]} awaiting the ordered merge
        self.chunk_results: dict[int, dict[int, list[np.ndarray]]] = {}
        # bk -> next chunk index the merge expects
        self.merge_next: dict[int, int] = {}
        # bk -> total chunk count
        self.chunk_counts: dict[int, int] = {}
        self.products_pending = 0
        self.epilogues_pending = 0


def _prep_gemm(ctx: _GemmCtx, gemm, a, b, bks: Sequence[int], m: int, n: int) -> float:
    """Stage float64 operands and zeroed accumulators for one GEMM."""
    t0 = time.perf_counter()
    # Exact float32 -> float64 widening, identical to the grouped engine.
    ctx.a64 = np.ascontiguousarray(gemm.op_a(a), dtype=np.float64)
    ctx.b64 = np.ascontiguousarray(gemm.op_b(b), dtype=np.float64)
    for bk in bks:
        ctx.accs[bk] = np.zeros((m, n), dtype=np.float64)
    return time.perf_counter() - t0


def _run_product_shard(
    ctx: _GemmCtx, shard: ProductShard, k: int
) -> tuple[Optional[list[np.ndarray]], float]:
    """Execute one product shard; returns (chunk products | None, busy_s).

    An unsplit shard accumulates straight into the shared accumulator
    (it is that accumulator's only writer) with the grouped engine's
    exact per-chunk loop.  A split shard returns its chunk products
    unaccumulated, stacked in one ``(chunks, m, n)`` buffer (a single
    allocation, matmul'd into slicewise) -- the coordinator merges
    them into the accumulator in ascending chunk order, because
    pre-accumulating here would re-associate the float sum and break
    bit-exactness.
    """
    t0 = time.perf_counter()
    a64, b64 = ctx.a64, ctx.b64
    bk = shard.bk
    if not shard.split:
        acc = ctx.accs[bk]
        tmp = np.empty_like(acc)
        for k0 in range(0, k, bk):
            k_hi = min(k0 + bk, k)
            np.matmul(a64[:, k0:k_hi], b64[k0:k_hi, :], out=tmp)
            np.add(acc, tmp, out=acc)
        return None, time.perf_counter() - t0
    acc = ctx.accs[bk]
    stack = np.empty(
        (shard.chunk_hi - shard.chunk_lo, acc.shape[0], acc.shape[1]),
        dtype=np.float64,
    )
    for i, chunk in enumerate(range(shard.chunk_lo, shard.chunk_hi)):
        k0 = chunk * bk
        k_hi = min(k0 + bk, k)
        np.matmul(a64[:, k0:k_hi], b64[k0:k_hi, :], out=stack[i])
    return stack, time.perf_counter() - t0


def _run_epilogue_shard(
    ctx: _GemmCtx, shard: EpilogueShard, gemm, c: np.ndarray, out: np.ndarray
) -> float:
    """Apply one tile-range slice of a group's alpha/beta epilogue."""
    t0 = time.perf_counter()
    group = shard.group
    strat = strategy_by_index(group.strategy_index)
    sub = TileGroup(
        gemm_index=group.gemm_index,
        strategy_index=group.strategy_index,
        interior=group.interior,
        y0=group.y0[shard.tile_lo : shard.tile_hi],
        x0=group.x0[shard.tile_lo : shard.tile_hi],
    )
    _epilogue_group(sub, gemm, ctx.accs[strat.bk], c, out, strat)
    return time.perf_counter() - t0


def execute_parallel(
    schedule: BatchSchedule,
    batch: GemmBatch,
    operands: Sequence[tuple[np.ndarray, np.ndarray, np.ndarray]],
    plan: GroupedPlan | None = None,
    *,
    workers: Optional[int] = None,
) -> list[np.ndarray]:
    """Execute a batch schedule across a multi-worker thread pool.

    Drop-in for :func:`repro.kernels.grouped.execute_grouped`
    (bit-identical outputs at every worker count; inputs are not
    modified; the same ``ValueError``/``IndexError`` contract).
    ``workers`` sizes the shared pool (see :func:`resolve_workers`;
    defaults to the host size capped at :data:`MAX_AUTO_WORKERS`);
    ``plan`` optionally supplies a pre-lowered plan, otherwise the
    memoized lowering of the schedule is used.
    """
    workers = resolve_workers(workers)
    tracer = get_tracer()
    with tracer.span(
        "execute.parallel",
        blocks=schedule.num_blocks,
        tiles=schedule.num_tiles,
        workers=workers,
    ) as span:
        tracer.counter("tiles_executed", schedule.num_tiles)
        outputs, n_shards, imbalance = _execute_parallel(
            schedule, batch, operands, plan, workers
        )
        tracer.gauge("parallel.workers", workers)
        tracer.gauge("parallel.imbalance", imbalance)
        if span.enabled:
            span.set_attr("shards", n_shards)
            span.set_attr("imbalance", round(imbalance, 3))
    return outputs


def _execute_parallel(
    schedule: BatchSchedule,
    batch: GemmBatch,
    operands: Sequence[tuple[np.ndarray, np.ndarray, np.ndarray]],
    plan: GroupedPlan | None,
    workers: int,
) -> tuple[list[np.ndarray], int, float]:
    validate_operands(batch, operands)
    if plan is None or plan.batch_token != _batch_token(batch):
        plan = grouped_plan_for(schedule, batch)

    tracer = get_tracer()
    shard_plan = plan_shards(plan, batch, workers)
    outputs = [
        np.zeros((g.m, g.n), dtype=op[2].dtype) for g, op in zip(batch, operands)
    ]

    products_by_gemm: dict[int, list[ProductShard]] = {}
    for shard in shard_plan.products:
        products_by_gemm.setdefault(shard.gemm_index, []).append(shard)
    epilogues_by_gemm: dict[int, list[EpilogueShard]] = {}
    for eshard in shard_plan.epilogues:
        epilogues_by_gemm.setdefault(eshard.gemm_index, []).append(eshard)

    ctxs: dict[int, _GemmCtx] = {}
    for gi, shards in products_by_gemm.items():
        ctx = _GemmCtx()
        ctx.products_pending = len(shards)
        ctx.epilogues_pending = len(epilogues_by_gemm.get(gi, ()))
        for shard in shards:
            if shard.bk not in ctx.chunk_counts:
                ctx.chunk_counts[shard.bk] = 0
                ctx.merge_next[shard.bk] = 0
                ctx.chunk_results[shard.bk] = {}
            ctx.chunk_counts[shard.bk] = max(
                ctx.chunk_counts[shard.bk], shard.chunk_hi
            )
        ctxs[gi] = ctx

    pool = shared_pool(workers)
    pending: set[Future] = set()
    meta: dict[Future, tuple] = {}
    busy_by_thread: dict[int, float] = {}

    def _submit(fn, tag, *args):
        fut = pool.submit(_timed, fn, *args)
        meta[fut] = tag
        pending.add(fut)

    def _timed(fn, *args):
        result = fn(*args)
        return threading.get_ident(), result

    def _submit_products(gi: int) -> None:
        for shard in products_by_gemm[gi]:
            _submit(_run_product_shard, ("product", gi, shard), ctxs[gi], shard, batch[gi].k)

    def _submit_epilogues(gi: int) -> None:
        a, b, c = operands[gi]
        for eshard in epilogues_by_gemm.get(gi, ()):
            _submit(
                _run_epilogue_shard,
                ("epilogue", gi, eshard),
                ctxs[gi],
                eshard,
                batch[gi],
                c,
                outputs[gi],
            )

    def _merge_ready(gi: int, bk: int) -> None:
        """Fold finished chunk products into the accumulator, in order."""
        ctx = ctxs[gi]
        acc = ctx.accs[bk]
        results = ctx.chunk_results[bk]
        while ctx.merge_next[bk] in results:
            lo = ctx.merge_next[bk]
            chunk_products = results.pop(lo)
            for product in chunk_products:
                np.add(acc, product, out=acc)
            ctx.merge_next[bk] = lo + len(chunk_products)

    def _product_settled(gi: int) -> bool:
        ctx = ctxs[gi]
        if ctx.products_pending:
            return False
        return all(
            ctx.merge_next[bk] >= count for bk, count in ctx.chunk_counts.items()
        )

    # Largest product first: the biggest GEMM's operands stage earliest
    # so its shards saturate the pool while smaller GEMMs queue behind.
    order = sorted(
        products_by_gemm,
        key=lambda gi: -sum(s.flops for s in products_by_gemm[gi]),
    )
    for gi in order:
        gemm = batch[gi]
        a, b, _ = operands[gi]
        bks = sorted(ctxs[gi].chunk_counts)
        _submit(_prep_gemm, ("prep", gi), ctxs[gi], gemm, a, b, bks, gemm.m, gemm.n)

    try:
        while pending:
            done, pending = wait(pending, return_when=FIRST_COMPLETED)
            for fut in done:
                thread_id, payload = fut.result()
                tag = meta.pop(fut)
                kind, gi = tag[0], tag[1]
                ctx = ctxs[gi]
                if kind == "prep":
                    busy_s = payload
                    _emit_shard_span(tracer, "prep", gi, busy_s)
                    _submit_products(gi)
                elif kind == "product":
                    shard = tag[2]
                    chunk_products, busy_s = payload
                    _emit_shard_span(
                        tracer,
                        "product",
                        gi,
                        busy_s,
                        bk=shard.bk,
                        chunks=shard.chunk_hi - shard.chunk_lo,
                        split=shard.split,
                    )
                    if shard.split:
                        ctx.chunk_results[shard.bk][shard.chunk_lo] = chunk_products
                        _merge_ready(gi, shard.bk)
                    else:
                        ctx.merge_next[shard.bk] = ctx.chunk_counts[shard.bk]
                    ctx.products_pending -= 1
                    if _product_settled(gi):
                        ctx.a64 = ctx.b64 = None  # operands no longer needed
                        _submit_epilogues(gi)
                else:  # epilogue
                    eshard = tag[2]
                    busy_s = payload
                    _emit_shard_span(
                        tracer,
                        "epilogue",
                        gi,
                        busy_s,
                        tiles=eshard.tile_hi - eshard.tile_lo,
                        interior=eshard.group.interior,
                    )
                    ctx.epilogues_pending -= 1
                busy = payload[1] if kind == "product" else payload
                busy_by_thread[thread_id] = busy_by_thread.get(thread_id, 0.0) + busy
    except BaseException:
        for fut in pending:
            fut.cancel()
        raise

    _check_coverage(plan, batch)
    return outputs, shard_plan.num_shards, _imbalance(busy_by_thread, workers)


def _emit_shard_span(tracer, kind: str, gemm_index: int, busy_s: float, **attrs) -> None:
    """Record one shard's worker-side measurement (calling thread only)."""
    if not tracer.enabled:
        return
    with tracer.span("parallel.shard", kind=kind, gemm=gemm_index, **attrs) as span:
        span.set_attr("busy_ms", round(busy_s * 1e3, 4))


def _imbalance(busy_by_thread: dict[int, float], workers: int) -> float:
    """Max-over-mean per-worker busy time across the pool.

    1.0 means every worker carried the same load; the upper bound is
    ``workers`` (all work on one thread).  Threads that received no
    shards count as zero -- idle capacity *is* imbalance.
    """
    if not busy_by_thread:
        return 1.0
    times = list(busy_by_thread.values()) + [0.0] * (workers - len(busy_by_thread))
    mean = sum(times) / len(times)
    if mean <= 0.0:
        return 1.0
    return max(times) / mean
