"""Process-based parallel execution over shared-memory operand arenas.

The thread-pool engine (:mod:`repro.kernels.parallel`) applies
Stream-K's work-centric decomposition host-side, but its workers are
threads: every shard pays Python dispatch under one GIL, and on a
contended host the coordinator thread fights its own workers for the
interpreter.  ``BENCH_parallel.json`` records the honest result --
*slower* than serial grouped at 4 workers on a small host.  This
module keeps the shard planner (the FLOP-balanced splitting is reused
from ``parallel.py`` verbatim) and replaces the executor substrate:

* a **persistent worker-process pool** (``ProcessPoolExecutor`` over a
  ``forkserver``/``spawn`` context, one pool per size, reused for the
  life of the process so repeated executions never pay process-start
  latency);
* **shared-memory operand arenas** (:mod:`multiprocessing.shared_memory`)
  -- the float64 ``op(A)``/``op(B)`` stagings, the per-``(gemm, BK)``
  accumulators, the split-shard chunk stacks, the C operands and the
  outputs all live in one named segment, so workers receive only tiny
  ``(arena name, shard descriptor)`` task tuples and never a matrix
  crosses a pipe;
* per-execute the coordinator stages operands into the arena **once**,
  workers compute their BK-chunk / epilogue shards as fat GIL-free
  ``np.matmul`` calls into per-worker heap scratch (copied into their
  arena slabs), and the coordinator merges split-product chunk slabs
  into the shared accumulator **in ascending chunk order** -- replaying
  the grouped engine's exact addition sequence, so outputs stay
  byte-identical to :func:`repro.kernels.grouped.execute_grouped` (and
  therefore to the reference walk) at every worker count.

**Warm serve.**  The arena, the shard plan, the slab layout and the
pre-built product tasks form a :class:`ProcpoolRuntime`, memoized per
``(schedule, batch shapes, workers)`` in a bounded weakref
:class:`~repro.kernels.memo.PlanMemo` -- a schedule pinned by a
:class:`~repro.core.plancache.PlanCache` entry keeps its arena
allocated across executions (operand *bytes* are restaged per call,
the segment itself is reused), so warm serve pays zero arena setup.

**Break-even.**  Process dispatch costs real IPC (task pickling, a
queue round trip, page faults on first touch), so batches whose total
product work is below :data:`MIN_PROCPOOL_FLOPS` execute serially
through the grouped engine instead (bit-identical either way; the
``procpool.serial_fallbacks`` counter records it).  The engine
registry exposes this threshold as a capability
(:attr:`~repro.kernels.engine.EngineCapabilities.min_work_flops`).

**Failure containment.**  A worker death breaks the pool
(``BrokenProcessPool``): every surviving worker of that pool is
terminated by the executor, the pool is retired (its registry slot is
freed and its ``generation`` is never reissued), and the execute
raises :class:`ProcpoolWorkerDied` -- an ordinary engine failure, so
the reliability chain (``procpool`` -> ``compiled`` -> ``grouped`` ->
``reference``) counts it into the breaker and degrades.  The next
procpool execute builds a **fresh pool generation**; stale results
cannot leak across the restart because (a) a broken pool's processes
are all dead before it is retired, and (b) every slab a worker writes
(accumulators, chunk stacks, outputs) is fully re-staged or re-written
by the current execute's own futures before the coordinator reads it.
Aborts that leave workers *alive* (a worker exception, cancellation,
``KeyboardInterrupt``) drain still-running shard futures before the
execute re-raises; if a straggler outlasts the bounded drain the
runtime is discarded and its arena unlinked, so a retry builds a
fresh segment the straggler cannot touch.  Concurrent executes of the
same ``(schedule, shapes, workers)`` share one memoized runtime and
serialize on its lock -- server worker threads racing a hot schedule
queue up instead of corrupting each other's slabs.

**Arena hygiene.**  Segments are tracked three ways: a
``weakref.finalize`` per arena unlinks it when its runtime is dropped
or evicted, an ``atexit`` sweep unlinks anything still registered at
interpreter exit, and the stdlib ``resource_tracker`` (a separate
process) unlinks leaked segments if the coordinator dies without
running either.  Workers attach segments *without* re-registering
ownership, so a worker's exit never unlinks a live arena.  The test
suite asserts ``/dev/shm`` holds no ``repro-pp-*`` entries after
normal close, coordinator crash, and worker kill.

Telemetry (coordinator thread only): an ``execute.procpool`` span with
shard/arena/generation attributes, ``procpool.workers`` /
``procpool.shard_imbalance`` / ``procpool.arena_bytes`` /
``procpool.ipc_us`` gauges, and ``procpool.serial_fallbacks`` /
``procpool.pool_restarts`` counters.

This module builds on :mod:`repro.kernels.grouped` (lowering,
epilogue) and :mod:`repro.kernels.parallel` (shard planning) but never
imports :mod:`repro.kernels.persistent` -- the oracle stays
independent (CI guards this).
"""

from __future__ import annotations

import atexit
import itertools
import os
import threading
import time
import warnings
import weakref
from collections import OrderedDict
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from multiprocessing import get_all_start_methods, get_context
from multiprocessing import shared_memory as _shm
from typing import Any, Optional, Sequence

import numpy as np

from repro.core.problem import GemmBatch, validate_operands
from repro.core.schedule import BatchSchedule
from repro.core.tiling import strategy_by_index
from repro.kernels.grouped import (
    GroupedPlan,
    TileGroup,
    _batch_token,
    _check_coverage,
    _epilogue_group,
    grouped_plan_for,
)
from repro.kernels.memo import MemoStats, PlanMemo
from repro.kernels.parallel import (
    MAX_AUTO_WORKERS,
    ShardPlan,
    _imbalance,
    plan_shards,
)
from repro.telemetry import get_tracer

__all__ = [
    "ARENA_PREFIX",
    "MIN_PROCPOOL_FLOPS",
    "PROCPOOL_WORKERS_ENV_VAR",
    "START_METHOD_ENV_VAR",
    "Arena",
    "ProcpoolRuntime",
    "ProcpoolWorkerDied",
    "clear_procpool_runtimes",
    "execute_procpool",
    "live_arena_names",
    "procpool_memo_stats",
    "procpool_runtime_for",
    "procpool_status",
    "resolve_procpool_workers",
    "shared_procpool",
    "shutdown_procpools",
]

#: Shared-memory segment names start with this (``/dev/shm`` hygiene
#: tests and the atexit sweep key on it).
ARENA_PREFIX = "repro-pp"

#: Below this many total product FLOPs the process pool cannot win --
#: IPC dispatch alone outweighs the matmul work -- so ``execute_procpool``
#: degenerates to the serial grouped engine (bit-identical either way).
MIN_PROCPOOL_FLOPS = 1e7

#: Environment override for the default worker-process count.  Falls
#: back to ``REPRO_PARALLEL_WORKERS`` (the thread engine's knob) so CI
#: can pin both engines with one variable.
PROCPOOL_WORKERS_ENV_VAR = "REPRO_PROCPOOL_WORKERS"

#: Environment override for the multiprocessing start method
#: (``forkserver`` where available, else ``spawn``).
START_METHOD_ENV_VAR = "REPRO_PROCPOOL_START"

#: Arena slabs are aligned to this many bytes so BLAS sees the same
#: alignment class it would on fresh heap allocations.
_SLAB_ALIGN = 64


class ProcpoolWorkerDied(RuntimeError):
    """A worker process died mid-execute; the pool was retired.

    Raised as an ordinary engine failure: the reliability layer counts
    it into the ``procpool`` circuit breaker and falls back along
    ``procpool`` -> ``compiled`` -> ``grouped`` -> ``reference``.  The
    next procpool execute starts a fresh pool generation.
    """


# -- worker sizing ---------------------------------------------------


def resolve_procpool_workers(workers: Optional[int] = None) -> int:
    """Normalize a worker-process spec to a concrete pool size.

    ``None`` reads :data:`PROCPOOL_WORKERS_ENV_VAR` (falling back to
    ``REPRO_PARALLEL_WORKERS``); a malformed or non-positive value is a
    ``ValueError`` naming the variable, never a traceback from ``int``.
    Unset, the pool sizes to the host: ``min(cpu_count,
    MAX_AUTO_WORKERS)``.  Environment-sourced values are **clamped** to
    the host CPU count (a deploy config asking for more processes than
    cores only adds contention); explicit ``workers=`` arguments are
    honoured but emit a ``RuntimeWarning`` when they oversubscribe the
    host, so benchmarks can still measure oversubscription on purpose.
    """
    cpus = os.cpu_count() or 1
    if workers is None:
        for var in (PROCPOOL_WORKERS_ENV_VAR, "REPRO_PARALLEL_WORKERS"):
            env = os.environ.get(var)
            if env:
                try:
                    value = int(env)
                except ValueError:
                    raise ValueError(
                        f"{var}={env!r} is not a positive integer "
                        f"(set it to a number of worker processes)"
                    ) from None
                if value < 1:
                    raise ValueError(
                        f"{var}={env!r} must be a positive integer, "
                        f"got {value}"
                    )
                if value > cpus:
                    _warn_oversubscribed(var, value, cpus, clamped=True)
                    value = cpus
                return value
        return min(MAX_AUTO_WORKERS, cpus)
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    if workers > cpus:
        _warn_oversubscribed("workers", workers, cpus, clamped=False)
    return workers


_WARNED_OVERSUBSCRIBED: set = set()


def _warn_oversubscribed(source: str, value: int, cpus: int, clamped: bool) -> None:
    key = (source, value, clamped)
    if key in _WARNED_OVERSUBSCRIBED:
        return
    _WARNED_OVERSUBSCRIBED.add(key)
    action = f"clamping to {cpus}" if clamped else "honouring it anyway"
    warnings.warn(
        f"{source}={value} oversubscribes this host ({cpus} CPU(s)); {action}",
        RuntimeWarning,
        stacklevel=3,
    )


# -- shared-memory arenas --------------------------------------------

_ARENA_COUNTER = itertools.count()
_LIVE_ARENAS: dict[str, _shm.SharedMemory] = {}
_ARENAS_LOCK = threading.Lock()


def _release_segment(name: str, seg: _shm.SharedMemory) -> None:
    """Unlink (always) then close (best effort) one segment."""
    with _ARENAS_LOCK:
        _LIVE_ARENAS.pop(name, None)
    try:
        seg.unlink()
    except FileNotFoundError:
        pass
    try:
        seg.close()
    except BufferError:  # a view outlived the arena; the unlink stands
        pass


@atexit.register
def _sweep_arenas() -> None:
    """Last line of in-process defense: unlink anything still live."""
    with _ARENAS_LOCK:
        leftovers = list(_LIVE_ARENAS.items())
        _LIVE_ARENAS.clear()
    for name, seg in leftovers:
        try:
            seg.unlink()
        except FileNotFoundError:
            pass
        try:
            seg.close()
        except BufferError:
            pass


def live_arena_names() -> list[str]:
    """Names of every arena this process currently owns (tests)."""
    with _ARENAS_LOCK:
        return sorted(_LIVE_ARENAS)


class Arena:
    """One named shared-memory segment with aligned ndarray slabs.

    The coordinator creates arenas (``create=True`` registers the name
    with the stdlib resource tracker, which unlinks it even if this
    process dies uncleanly); a ``weakref.finalize`` unlinks the segment
    as soon as the owning :class:`ProcpoolRuntime` is dropped.  Views
    are created on demand and never cached, so cleanup cannot trip on
    exported buffers.
    """

    def __init__(self, size: int):
        name = f"{ARENA_PREFIX}-{os.getpid()}-{next(_ARENA_COUNTER)}"
        self.shm = _shm.SharedMemory(name=name, create=True, size=max(size, 1))
        self.name = self.shm.name.lstrip("/")
        self.size = size
        with _ARENAS_LOCK:
            _LIVE_ARENAS[self.name] = self.shm
        self._finalizer = weakref.finalize(
            self, _release_segment, self.name, self.shm
        )

    def view(self, offset: int, shape: tuple, dtype: Any = np.float64) -> np.ndarray:
        """A zero-copy ndarray over one slab of the segment."""
        return np.ndarray(shape, dtype=dtype, buffer=self.shm.buf, offset=offset)

    def close(self) -> None:
        """Unlink the segment now (idempotent)."""
        self._finalizer()


# -- the pinned runtime ----------------------------------------------


@dataclass(frozen=True)
class _ProductTask:
    """One product shard, addressed entirely inside the arena.

    ``stack`` is ``None`` for an unsplit shard (the worker accumulates
    straight into the shared ``acc`` slab in ascending chunk order,
    exactly the grouped engine's loop); a split shard writes its
    unaccumulated chunk products into its ``stack`` slab for the
    coordinator's ordered merge.
    """

    arena: str
    gemm_index: int
    bk: int
    k: int
    chunk_lo: int
    chunk_hi: int
    a: tuple[int, tuple[int, int]]
    b: tuple[int, tuple[int, int]]
    acc: tuple[int, tuple[int, int]]
    stack: Optional[tuple[int, tuple[int, int, int]]]


@dataclass(frozen=True)
class _EpilogueSpec:
    """Per-runtime template of one epilogue shard (no live-batch data)."""

    gemm_index: int
    strategy_index: int
    interior: bool
    y0: np.ndarray
    x0: np.ndarray
    acc: tuple[int, tuple[int, int]]
    c: tuple[int, tuple[int, int]]
    out: tuple[int, tuple[int, int]]


@dataclass(frozen=True)
class _EpilogueTask:
    """One epilogue shard plus the live batch's alpha/beta and dtype."""

    arena: str
    spec: _EpilogueSpec
    gemm: Any
    c_dtype: str


@dataclass(frozen=True)
class ProcpoolRuntime:
    """Everything one schedule needs to execute on the process pool.

    Built once per ``(schedule, batch shapes, workers)`` and memoized:
    the arena (operand stagings, accumulators, chunk stacks, outputs),
    the FLOP-balanced :class:`~repro.kernels.parallel.ShardPlan`, the
    slab layout, and the pre-built product tasks.  Coverage is
    validated here, once -- executes never re-check.  Epilogue *specs*
    are templates; alpha/beta and the C dtype come from the live batch
    at execute time (the plan cache's signature excludes them).

    Because the runtime is shared (the memo hands the same instance to
    every caller with the same key), ``lock`` serializes executes over
    it: server worker threads racing the same schedule would otherwise
    stage, zero and merge into the *same* slabs concurrently and
    silently corrupt each other's outputs.
    """

    batch_token: tuple
    workers: int
    shard_plan: ShardPlan
    arena: Arena = field(repr=False)
    slabs: dict = field(repr=False)
    product_tasks: tuple[_ProductTask, ...] = field(repr=False)
    epilogue_specs: tuple[_EpilogueSpec, ...] = field(repr=False)
    total_flops: float = 0.0
    lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    @property
    def arena_bytes(self) -> int:
        return self.arena.size

    @property
    def num_shards(self) -> int:
        return self.shard_plan.num_shards


def _build_runtime(
    schedule: BatchSchedule, batch: GemmBatch, workers: int
) -> ProcpoolRuntime:
    plan = grouped_plan_for(schedule, batch)
    _check_coverage(plan, batch)  # once per runtime, never per execute
    shard_plan = plan_shards(plan, batch, workers)

    slabs: dict[str, tuple[int, tuple]] = {}
    cursor = 0

    def slab(key: str, shape: tuple) -> tuple[int, tuple]:
        nonlocal cursor
        cursor = (cursor + _SLAB_ALIGN - 1) & ~(_SLAB_ALIGN - 1)
        slabs[key] = (cursor, shape)
        cursor += int(np.prod(shape)) * 8  # float64 / max-width element
        return slabs[key]

    gemm_ids = sorted({s.gemm_index for s in shard_plan.products})
    for gi in gemm_ids:
        g = batch[gi]
        slab(f"a:{gi}", (g.m, g.k))
        slab(f"b:{gi}", (g.k, g.n))
        slab(f"c:{gi}", (g.m, g.n))
        slab(f"out:{gi}", (g.m, g.n))
    for s in shard_plan.products:
        g = batch[s.gemm_index]
        key = f"acc:{s.gemm_index}:{s.bk}"
        if key not in slabs:
            slab(key, (g.m, g.n))
    for j, s in enumerate(shard_plan.products):
        if s.split:
            g = batch[s.gemm_index]
            slab(f"stack:{j}", (s.chunk_hi - s.chunk_lo, g.m, g.n))

    arena = Arena(cursor)
    total_flops = sum(s.flops for s in shard_plan.products)

    product_tasks = tuple(
        _ProductTask(
            arena=arena.name,
            gemm_index=s.gemm_index,
            bk=s.bk,
            k=batch[s.gemm_index].k,
            chunk_lo=s.chunk_lo,
            chunk_hi=s.chunk_hi,
            a=slabs[f"a:{s.gemm_index}"],
            b=slabs[f"b:{s.gemm_index}"],
            acc=slabs[f"acc:{s.gemm_index}:{s.bk}"],
            stack=slabs.get(f"stack:{j}") if s.split else None,
        )
        for j, s in enumerate(shard_plan.products)
    )
    epilogue_specs = tuple(
        _EpilogueSpec(
            gemm_index=e.gemm_index,
            strategy_index=e.group.strategy_index,
            interior=e.group.interior,
            y0=e.group.y0[e.tile_lo : e.tile_hi],
            x0=e.group.x0[e.tile_lo : e.tile_hi],
            acc=slabs[
                f"acc:{e.gemm_index}:"
                f"{strategy_by_index(e.group.strategy_index).bk}"
            ],
            c=slabs[f"c:{e.gemm_index}"],
            out=slabs[f"out:{e.gemm_index}"],
        )
        for e in shard_plan.epilogues
    )
    return ProcpoolRuntime(
        batch_token=plan.batch_token,
        workers=workers,
        shard_plan=shard_plan,
        arena=arena,
        slabs=slabs,
        product_tasks=product_tasks,
        epilogue_specs=epilogue_specs,
        total_flops=total_flops,
    )


#: Bounded memo of pinned runtimes.  Small on purpose: each entry owns
#: a real shared-memory segment, and eviction unlinks it.
_RUNTIME_MEMO = PlanMemo(capacity=8, name="procpool")


def procpool_runtime_for(
    schedule: BatchSchedule, batch: GemmBatch, workers: int
) -> ProcpoolRuntime:
    """The memoized pinned runtime of ``(schedule, batch shapes, workers)``.

    A schedule held by a :class:`~repro.core.plancache.PlanCache` keeps
    its arena allocated across warm executions; an evicted or dropped
    schedule releases the segment via the arena finalizer.
    """
    token = (_batch_token(batch), workers)
    cached = _RUNTIME_MEMO.get(schedule, token)
    if cached is not None:
        return cached
    return _RUNTIME_MEMO.put(schedule, token, _build_runtime(schedule, batch, workers))


def procpool_memo_stats() -> MemoStats:
    """Hit/miss/eviction counters of the runtime memo."""
    return _RUNTIME_MEMO.stats_snapshot()


def clear_procpool_runtimes() -> None:
    """Drop every pinned runtime and unlink their arenas now.

    Eagerly closes each arena instead of waiting for refcounts -- a
    stray traceback or REPL binding holding a runtime alive must not
    keep its shared-memory segment on disk (the atexit sweep and
    resource tracker would still catch it, but tests assert promptly).
    """
    with _RUNTIME_MEMO._lock:
        runtimes = [artifact for (_, _, artifact) in _RUNTIME_MEMO._entries.values()]
        _RUNTIME_MEMO.clear()
    for runtime in runtimes:
        runtime.arena.close()


# -- the worker side (runs in the pool processes) --------------------

#: Attached segments, LRU-bounded; evicted handles are closed.  The
#: attach does NOT re-register ownership with the resource tracker --
#: the coordinator owns the segment, so a worker exiting must never
#: unlink a live arena.
_WORKER_SEGMENTS: "OrderedDict[str, _shm.SharedMemory]" = OrderedDict()
_WORKER_SEGMENT_CAP = 8

_WORKER_SCRATCH: "OrderedDict[tuple[int, int], np.ndarray]" = OrderedDict()
_WORKER_SCRATCH_CAP = 8


def _worker_segment(name: str) -> _shm.SharedMemory:
    seg = _WORKER_SEGMENTS.get(name)
    if seg is not None:
        _WORKER_SEGMENTS.move_to_end(name)
        return seg
    seg = _shm.SharedMemory(name=name)
    _WORKER_SEGMENTS[name] = seg
    while len(_WORKER_SEGMENTS) > _WORKER_SEGMENT_CAP:
        _, old = _WORKER_SEGMENTS.popitem(last=False)
        try:
            old.close()
        except BufferError:  # pragma: no cover - view still exported
            pass
    return seg


def _worker_view(name: str, slab: tuple, dtype: Any = np.float64) -> np.ndarray:
    offset, shape = slab
    return np.ndarray(shape, dtype=dtype, buffer=_worker_segment(name).buf, offset=offset)


def _worker_scratch(m: int, n: int) -> np.ndarray:
    buf = _WORKER_SCRATCH.get((m, n))
    if buf is not None:
        _WORKER_SCRATCH.move_to_end((m, n))
        return buf
    buf = np.empty((m, n), dtype=np.float64)
    _WORKER_SCRATCH[(m, n)] = buf
    while len(_WORKER_SCRATCH) > _WORKER_SCRATCH_CAP:
        _WORKER_SCRATCH.popitem(last=False)
    return buf


def _run_product_task(task: _ProductTask) -> tuple[int, float]:
    """Execute one product shard inside a worker process.

    An unsplit shard replays the grouped engine's exact loop -- one
    full-width matmul per BK chunk into heap scratch, added into the
    shared accumulator in ascending chunk order (this worker is that
    accumulator's only writer).  A split shard computes its contiguous
    chunk range into heap scratch and copies each product into its
    stack slab *unaccumulated*: pre-summing here would re-associate the
    float addition sequence and break bit-exactness, so the ordered
    merge belongs to the coordinator.
    """
    t0 = time.perf_counter()
    a64 = _worker_view(task.arena, task.a)
    b64 = _worker_view(task.arena, task.b)
    m, n = task.acc[1]
    tmp = _worker_scratch(m, n)
    bk, k = task.bk, task.k
    if task.stack is None:
        acc = _worker_view(task.arena, task.acc)
        for k0 in range(0, k, bk):
            k_hi = min(k0 + bk, k)
            np.matmul(a64[:, k0:k_hi], b64[k0:k_hi, :], out=tmp)
            np.add(acc, tmp, out=acc)
    else:
        stack = _worker_view(task.arena, task.stack)
        for i, chunk in enumerate(range(task.chunk_lo, task.chunk_hi)):
            k0 = chunk * bk
            k_hi = min(k0 + bk, k)
            np.matmul(a64[:, k0:k_hi], b64[k0:k_hi, :], out=tmp)
            np.copyto(stack[i], tmp)
    return os.getpid(), time.perf_counter() - t0


def _run_epilogue_task(task: _EpilogueTask) -> tuple[int, float]:
    """Apply one tile-range slice of an alpha/beta epilogue in a worker.

    Reads the merged accumulator and the staged C operand from the
    arena, writes the output window slab -- elementwise over disjoint
    windows, so shard boundaries cannot change any element's
    arithmetic.
    """
    t0 = time.perf_counter()
    spec = task.spec
    dtype = np.dtype(task.c_dtype)
    acc = _worker_view(task.arena, spec.acc)
    c = _worker_view(task.arena, spec.c, dtype)
    out = _worker_view(task.arena, spec.out, dtype)
    sub = TileGroup(
        gemm_index=spec.gemm_index,
        strategy_index=spec.strategy_index,
        interior=spec.interior,
        y0=spec.y0,
        x0=spec.x0,
    )
    strat = strategy_by_index(spec.strategy_index)
    _epilogue_group(sub, task.gemm, acc, c, out, strat)
    return os.getpid(), time.perf_counter() - t0


# -- the persistent pool ---------------------------------------------


class ProcPool:
    """One persistent worker-process pool of a fixed size."""

    __slots__ = ("executor", "workers", "generation", "alive")

    def __init__(self, executor: ProcessPoolExecutor, workers: int, generation: int):
        self.executor = executor
        self.workers = workers
        self.generation = generation
        self.alive = True


_PROC_POOLS: dict[int, ProcPool] = {}
#: Tombstones of retired (broken) pools, keyed by size like the live
#: registry.  A tombstone stays visible to :func:`procpool_status`
#: until a fresh generation of that size is created, so health
#: endpoints can actually observe a dead, not-yet-replaced pool.
_RETIRED_POOLS: dict[int, ProcPool] = {}
_POOLS_LOCK = threading.Lock()
_GENERATIONS = itertools.count(1)
_RESTARTS = 0


def _start_method() -> str:
    method = os.environ.get(START_METHOD_ENV_VAR)
    if method:
        return method
    return "forkserver" if "forkserver" in get_all_start_methods() else "spawn"


def _make_executor(workers: int) -> ProcessPoolExecutor:
    method = _start_method()
    ctx = get_context(method)
    if method == "forkserver":
        try:
            # Pre-import numpy + this module in the fork server so each
            # worker forks warm instead of re-importing per process.
            ctx.set_forkserver_preload(["repro.kernels.procpool"])
        except Exception:  # pragma: no cover - preload is best-effort
            pass
    return ProcessPoolExecutor(max_workers=workers, mp_context=ctx)


def shared_procpool(workers: int) -> ProcPool:
    """The persistent process pool for ``workers`` processes.

    Pools are created lazily, one per distinct size, and reused for the
    life of the process -- warm executions never pay process start or
    interpreter import.  A pool broken by worker death is replaced on
    the next call with a fresh generation.
    """
    workers = resolve_procpool_workers(workers)
    with _POOLS_LOCK:
        pool = _PROC_POOLS.get(workers)
        if pool is None:
            pool = ProcPool(_make_executor(workers), workers, next(_GENERATIONS))
            _PROC_POOLS[workers] = pool
            # A fresh generation supersedes this size's tombstone.
            _RETIRED_POOLS.pop(workers, None)
        return pool


def _retire_pool(pool: ProcPool) -> None:
    """Drop a broken pool so the next execute gets a fresh generation.

    The pool leaves the live registry but stays visible to
    :func:`procpool_status` as a tombstone until a new generation of
    its size replaces it.
    """
    global _RESTARTS
    with _POOLS_LOCK:
        if _PROC_POOLS.get(pool.workers) is pool:
            del _PROC_POOLS[pool.workers]
            _RETIRED_POOLS[pool.workers] = pool
            _RESTARTS += 1
        pool.alive = False
    pool.executor.shutdown(wait=False, cancel_futures=True)


def shutdown_procpools() -> None:
    """Shut down every live pool (test isolation helper)."""
    with _POOLS_LOCK:
        pools = list(_PROC_POOLS.values())
        _PROC_POOLS.clear()
        _RETIRED_POOLS.clear()
    for pool in pools:
        pool.alive = False
        pool.executor.shutdown(wait=True, cancel_futures=True)


def procpool_status() -> dict:
    """Pool liveness for health endpoints (JSON-compatible).

    ``alive`` is ``False`` only when pools have existed and every one
    of them is currently broken -- i.e. at least one retired pool has
    not yet been replaced by a fresh generation and no live pool
    exists.  An idle process with no pools yet is healthy.  Retired
    pools appear in ``pools`` with ``"retired": True`` until their
    size is recreated.
    """
    with _POOLS_LOCK:
        entries = [
            {
                "workers": p.workers,
                "generation": p.generation,
                "alive": p.alive,
                "retired": False,
            }
            for p in _PROC_POOLS.values()
        ] + [
            {
                "workers": p.workers,
                "generation": p.generation,
                "alive": False,
                "retired": True,
            }
            for p in _RETIRED_POOLS.values()
        ]
        restarts = _RESTARTS
    return {
        "alive": any(p["alive"] for p in entries) if entries else True,
        "pools": sorted(entries, key=lambda p: (p["workers"], p["generation"])),
        "restarts": restarts,
        "live_arenas": len(live_arena_names()),
    }


# -- the engine ------------------------------------------------------


def execute_procpool(
    schedule: BatchSchedule,
    batch: GemmBatch,
    operands: Sequence[tuple[np.ndarray, np.ndarray, np.ndarray]],
    plan: GroupedPlan | None = None,
    *,
    workers: Optional[int] = None,
    min_flops: Optional[float] = None,
) -> list[np.ndarray]:
    """Execute a batch schedule across the worker-process pool.

    Drop-in for :func:`repro.kernels.grouped.execute_grouped`
    (byte-identical outputs at every worker count; inputs are not
    modified; the same ``ValueError``/``IndexError`` contract).
    ``workers`` sizes the pool (see :func:`resolve_procpool_workers`);
    ``min_flops`` overrides the serial break-even threshold
    (:data:`MIN_PROCPOOL_FLOPS`; pass ``0`` to force the process path,
    as the equivalence suite does).  Raises
    :class:`ProcpoolWorkerDied` when a worker process dies mid-run.
    """
    workers = resolve_procpool_workers(workers)
    tracer = get_tracer()
    with tracer.span(
        "execute.procpool",
        blocks=schedule.num_blocks,
        tiles=schedule.num_tiles,
        workers=workers,
    ) as span:
        tracer.counter("tiles_executed", schedule.num_tiles)
        outputs, info = _execute_procpool(
            schedule, batch, operands, plan, workers, min_flops
        )
        tracer.gauge("procpool.workers", workers)
        if span.enabled:
            for key, value in info.items():
                span.set_attr(key, value)
        if not info.get("serial"):
            tracer.gauge("procpool.shard_imbalance", info["imbalance"])
            tracer.gauge("procpool.arena_bytes", info["arena_bytes"])
            tracer.gauge("procpool.ipc_us", info["ipc_us"])
    return outputs


def _supported_operands(operands) -> bool:
    """Whether every operand can round-trip the arena byte views.

    All three matrices are checked: an exotic A or B (complex,
    float128, object) would make the staging ``np.copyto`` raise under
    same-kind casting, whereas the grouped engine casts and succeeds --
    the drop-in contract demands the grouped path handle those too.
    """
    return all(
        arr.dtype.kind in "fiu" and arr.dtype.itemsize <= 8
        for op in operands
        for arr in op
    )


def _execute_procpool(
    schedule: BatchSchedule,
    batch: GemmBatch,
    operands: Sequence[tuple[np.ndarray, np.ndarray, np.ndarray]],
    plan: GroupedPlan | None,
    workers: int,
    min_flops: Optional[float],
) -> tuple[list[np.ndarray], dict]:
    validate_operands(batch, operands)
    if plan is None or plan.batch_token != _batch_token(batch):
        plan = grouped_plan_for(schedule, batch)

    tracer = get_tracer()
    threshold = MIN_PROCPOOL_FLOPS if min_flops is None else min_flops
    total_flops = sum(
        2.0 * batch[g.gemm_index].m * batch[g.gemm_index].n * batch[g.gemm_index].k
        for g in {
            (grp.gemm_index, strategy_by_index(grp.strategy_index).bk): grp
            for grp in plan.groups
        }.values()
    )
    if total_flops < threshold or not _supported_operands(operands):
        # Below break-even (or exotic dtype): the grouped engine is the
        # faster -- and still bit-identical -- executor.
        from repro.kernels.grouped import execute_grouped

        tracer.counter("procpool.serial_fallbacks")
        outputs = execute_grouped(schedule, batch, operands, plan)
        return outputs, {"serial": True, "total_flops": total_flops}

    runtime = procpool_runtime_for(schedule, batch, workers)
    # The memo hands the SAME runtime (arena included) to every caller
    # with this (schedule, shapes, workers) key -- server worker
    # threads race it.  Hold the runtime lock across the whole
    # stage -> submit -> merge -> copy-out window so concurrent
    # executes serialize instead of interleaving writes into the same
    # slabs.
    with runtime.lock:
        return _execute_on_runtime(
            schedule, batch, operands, runtime, workers, total_flops
        )


#: How long an aborted execute waits for still-running shard futures
#: to drain before fencing the arena off (seconds).
_STRAGGLER_DRAIN_S = 30.0


def _drain_or_fence(
    schedule: BatchSchedule,
    runtime: ProcpoolRuntime,
    pending: set,
    timeout: float = _STRAGGLER_DRAIN_S,
) -> None:
    """Make the arena safe to reuse after an aborted execute.

    Cancelling only removes *queued* futures; a shard already running
    in a worker keeps writing its acc/stack slabs.  A retry on the
    memoized runtime would re-stage those same slabs, and the
    straggler's late write would corrupt the retry's result.  So:
    cancel what we can, wait (bounded) for the rest to finish, and if
    any shard is still running after the timeout -- or the wait itself
    is interrupted -- discard the runtime from the memo and unlink its
    arena, so the next execute builds a fresh segment the straggler
    has never heard of.
    """
    for fut in pending:
        fut.cancel()
    running = {fut for fut in pending if not fut.cancelled()}
    if not running:
        return
    quiescent = False
    try:
        _, stragglers = wait(running, timeout=timeout)
        quiescent = not stragglers
    except BaseException:  # e.g. a second KeyboardInterrupt mid-drain
        pass
    if not quiescent:
        _RUNTIME_MEMO.discard(schedule)
        runtime.arena.close()


def _execute_on_runtime(
    schedule: BatchSchedule,
    batch: GemmBatch,
    operands: Sequence[tuple[np.ndarray, np.ndarray, np.ndarray]],
    runtime: ProcpoolRuntime,
    workers: int,
    total_flops: float,
) -> tuple[list[np.ndarray], dict]:
    tracer = get_tracer()
    pool = shared_procpool(workers)
    t_start = time.perf_counter()

    # -- stage operands into the arena (once per execute) ------------
    t0 = time.perf_counter()
    arena = runtime.arena
    staged_gemms = sorted({t.gemm_index for t in runtime.product_tasks})
    for gi in staged_gemms:
        gemm = batch[gi]
        a, b, c = operands[gi]
        np.copyto(arena.view(*runtime.slabs[f"a:{gi}"]), gemm.op_a(a))
        np.copyto(arena.view(*runtime.slabs[f"b:{gi}"]), gemm.op_b(b))
        off, shape = runtime.slabs[f"c:{gi}"]
        np.copyto(arena.view(off, shape, c.dtype), c)
    for task in runtime.product_tasks:
        if task.stack is None:
            # The unsplit worker accumulates in place; split products
            # are zeroed at merge time by the coordinator.
            arena.view(*task.acc).fill(0.0)
    stage_s = time.perf_counter() - t0

    # -- submit product shards; merge split stacks in chunk order ----
    busy_by_pid: dict[int, float] = {}
    merge_s = 0.0
    pending: set[Future] = set()
    meta: dict[Future, tuple] = {}

    # Per (gemm, bk): how many shards remain, and the ordered merge
    # cursor over split stacks.
    shards_left: dict[tuple[int, int], int] = {}
    merge_next: dict[tuple[int, int], int] = {}
    chunk_hi_max: dict[tuple[int, int], int] = {}
    ready_stacks: dict[tuple[int, int], dict[int, _ProductTask]] = {}
    zeroed: set[tuple[int, int]] = set()
    products_left: dict[int, int] = {}
    epilogues_left = 0

    for task in runtime.product_tasks:
        key = (task.gemm_index, task.bk)
        shards_left[key] = shards_left.get(key, 0) + 1
        merge_next.setdefault(key, 0)
        chunk_hi_max[key] = max(chunk_hi_max.get(key, 0), task.chunk_hi)
        ready_stacks.setdefault(key, {})
        products_left[task.gemm_index] = products_left.get(task.gemm_index, 0) + 1

    specs_by_gemm: dict[int, list[_EpilogueSpec]] = {}
    for spec in runtime.epilogue_specs:
        specs_by_gemm.setdefault(spec.gemm_index, []).append(spec)

    def _submit(fn, tag, payload) -> None:
        fut = pool.executor.submit(fn, payload)
        meta[fut] = tag
        pending.add(fut)

    def _merge_ready(key: tuple[int, int]) -> float:
        """Fold finished stacks into the accumulator, ascending chunks."""
        t0 = time.perf_counter()
        gi, bk = key
        stacks = ready_stacks[key]
        acc = None
        while merge_next[key] in stacks:
            task = stacks.pop(merge_next[key])
            if acc is None:
                acc = arena.view(*task.acc)
            if key not in zeroed:
                acc.fill(0.0)
                zeroed.add(key)
            stack = arena.view(*task.stack)
            for i in range(task.chunk_hi - task.chunk_lo):
                np.add(acc, stack[i], out=acc)
            merge_next[key] = task.chunk_hi
        return time.perf_counter() - t0

    def _gemm_settled(gi: int) -> bool:
        if products_left[gi]:
            return False
        return all(
            merge_next[key] >= chunk_hi_max[key]
            for key in shards_left
            if key[0] == gi and ready_stacks[key] is not None
        )

    def _submit_epilogues(gi: int) -> int:
        gemm = batch[gi]
        dtype_name = operands[gi][2].dtype.str
        count = 0
        for spec in specs_by_gemm.get(gi, ()):
            _submit(
                _run_epilogue_task,
                ("epilogue", gi),
                _EpilogueTask(
                    arena=arena.name, spec=spec, gemm=gemm, c_dtype=dtype_name
                ),
            )
            count += 1
        return count

    try:
        for task in runtime.product_tasks:
            _submit(_run_product_task, ("product", task), task)
        while pending:
            done, pending = wait(pending, return_when=FIRST_COMPLETED)
            for fut in done:
                pid, busy_s = fut.result()
                busy_by_pid[pid] = busy_by_pid.get(pid, 0.0) + busy_s
                tag = meta.pop(fut)
                if tag[0] == "product":
                    task = tag[1]
                    key = (task.gemm_index, task.bk)
                    if task.stack is None:
                        merge_next[key] = chunk_hi_max[key]
                    else:
                        ready_stacks[key][task.chunk_lo] = task
                        merge_s += _merge_ready(key)
                    shards_left[key] -= 1
                    products_left[task.gemm_index] -= 1
                    if _gemm_settled(task.gemm_index):
                        epilogues_left += _submit_epilogues(task.gemm_index)
                else:
                    epilogues_left -= 1
    except BrokenProcessPool as exc:
        _retire_pool(pool)
        tracer.counter("procpool.pool_restarts")
        raise ProcpoolWorkerDied(
            f"worker process died mid-execute (pool generation "
            f"{pool.generation} retired; a fresh pool starts on the next "
            f"procpool execute)"
        ) from exc
    except BaseException:
        # Worker exception / cancellation / KeyboardInterrupt: unlike
        # the broken-pool case the workers are still alive, so drain
        # (or fence off) their in-flight slab writes before a retry
        # can restage this arena.
        _drain_or_fence(schedule, runtime, pending)
        raise

    # -- copy outputs out of the arena -------------------------------
    t0 = time.perf_counter()
    outputs: list[np.ndarray] = []
    for gi, (gemm, op) in enumerate(zip(batch, operands)):
        if gi in products_left:
            off, shape = runtime.slabs[f"out:{gi}"]
            outputs.append(arena.view(off, shape, op[2].dtype).copy())
        else:  # a GEMM with no tiles assigned executes to zeros
            outputs.append(np.zeros((gemm.m, gemm.n), dtype=op[2].dtype))
    copyout_s = time.perf_counter() - t0

    wall_s = time.perf_counter() - t_start
    max_busy = max(busy_by_pid.values(), default=0.0)
    ipc_s = max(0.0, wall_s - stage_s - merge_s - copyout_s - max_busy)
    info = {
        "serial": False,
        "shards": runtime.num_shards,
        "generation": pool.generation,
        "arena_bytes": runtime.arena_bytes,
        "total_flops": total_flops,
        "imbalance": round(_imbalance(busy_by_pid, workers), 3),
        "ipc_us": round(ipc_s * 1e6, 1),
        "stage_us": round(stage_s * 1e6, 1),
        "merge_us": round(merge_s * 1e6, 1),
    }
    return outputs, info
