"""The execution policy: one object for "how should this batch run".

Execution knobs used to travel as loose keyword arguments -- the
``engine=`` / ``workers=`` / ``fallback=`` / ``injector=`` / ``retry=``
sprawl on :meth:`CoordinatedFramework.execute`,
:meth:`PlanCache.execute`, :meth:`PlanCache.warm`, ``ServeConfig`` and
the ``repro-serve`` CLI, each surface validating its own subset.  This
module collapses them into one frozen :class:`ExecutionPolicy`
accepted everywhere, mirroring the PR 1 ``PlanOptions`` migration for
planning knobs: pass the dataclass going forward, and every legacy
kwarg spelling keeps working behind a ``DeprecationWarning`` shim
(:func:`coerce_policy`).

The policy is pure data -- it names an engine out of the typed
registry (:mod:`repro.kernels.engine`) and carries the reliability
envelope (retry policy, fault injector, fallback flag).  Resolution to
actual executors happens at the call sites:
:func:`repro.kernels.get_engine` for the direct path,
:meth:`repro.reliability.ReliableExecutor.from_policy` when
:attr:`ExecutionPolicy.reliable` is set.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, replace
from typing import Any, Optional

from repro.kernels.engine import (
    ENGINES,
    WORKER_ENGINES,
    engine_accepts_workers,
    get_engine_object,
)

__all__ = ["ExecutionPolicy", "coerce_policy"]


@dataclass(frozen=True)
class ExecutionPolicy:
    """How a batch should execute: engine, workers, reliability envelope.

    Parameters
    ----------
    engine:
        Name from the engine registry (``reference`` / ``grouped`` /
        ``parallel`` / ``compiled`` / ``procpool``).
    workers:
        Worker-pool size.  For the ``parallel`` (thread) and
        ``procpool`` (process) engines this is the shard pool;
        :meth:`PlanCache.warm` also uses it to fan out planning.  Engines without worker support ignore it at run
        time (legacy kwarg spellings still raise, via
        :func:`coerce_policy`, to preserve the old contract).
    fallback:
        Walk the engine's degradation chain
        (:func:`repro.kernels.engine_fallbacks`) on failure.
    retry:
        A :class:`~repro.reliability.RetryPolicy` for transient
        faults (``None`` = the executor's default when reliability is
        engaged).
    injector:
        A :class:`~repro.reliability.FaultInjector` evaluated at the
        ``"engine"`` fault site before every execution (chaos tests).
    precision:
        Optional storage precision (``"fp32"`` / ``"fp16"`` /
        ``"bf16"``) this execution should stage operands at.  ``None``
        defers to the planning options / operand dtype / framework
        default (see :meth:`CoordinatedFramework.execute`); planning
        options that pin a precision win over the policy.
    verify:
        Run the :mod:`repro.kernels.verify` contract on the outputs
        after execution (bit-exact for fp32, per-dtype tolerance for
        fp16/bf16) and raise
        :class:`~repro.kernels.verify.VerificationError` on failure.
    """

    engine: str = "grouped"
    workers: Optional[int] = None
    fallback: bool = False
    retry: Optional[Any] = None
    injector: Optional[Any] = None
    precision: Optional[str] = None
    verify: bool = False

    def __post_init__(self):
        """Validate the engine name, worker count, and precision."""
        get_engine_object(self.engine)  # canonical unknown-engine ValueError
        if self.workers is not None and self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")
        if self.precision is not None:
            from repro.core.precision import Precision

            object.__setattr__(
                self, "precision", Precision.coerce(self.precision).value
            )

    @property
    def reliable(self) -> bool:
        """Whether execution needs the reliability wrapper.

        True when any of fallback / retry / injector is engaged; the
        plain :func:`repro.kernels.get_engine` path suffices otherwise.
        """
        return self.fallback or self.retry is not None or self.injector is not None

    @classmethod
    def of(cls, value, warn_on_str: bool = True) -> "ExecutionPolicy":
        """Coerce ``value`` into an :class:`ExecutionPolicy`.

        Accepts a policy (returned as-is), ``None`` (the default
        policy), or a bare engine-name string -- the legacy spelling,
        which emits a ``DeprecationWarning`` unless ``warn_on_str`` is
        false.
        """
        if value is None:
            return cls()
        if isinstance(value, cls):
            return value
        if isinstance(value, str):
            if warn_on_str:
                warnings.warn(
                    f"passing engine={value!r} as a bare string is deprecated; "
                    f"use repro.ExecutionPolicy(engine={value!r})",
                    DeprecationWarning,
                    stacklevel=3,
                )
            return cls(engine=value)
        raise TypeError(
            f"expected ExecutionPolicy, engine name, or None; got {type(value).__name__}"
        )

    def with_workers(self, workers: Optional[int]) -> "ExecutionPolicy":
        """This policy with ``workers`` replaced (returns self if equal)."""
        if workers == self.workers:
            return self
        return replace(self, workers=workers)

    def to_dict(self) -> dict:
        """JSON-compatible summary (health endpoints, run manifests)."""
        return {
            "engine": self.engine,
            "workers": self.workers,
            "fallback": self.fallback,
            "retry": self.retry is not None,
            "injector": self.injector is not None,
            "precision": self.precision,
            "verify": self.verify,
        }


def coerce_policy(
    policy: Optional[Any],
    *,
    engine: Optional[str] = None,
    workers: Optional[int] = None,
    fallback: Optional[bool] = None,
    retry: Optional[Any] = None,
    injector: Optional[Any] = None,
    where: str,
    default_engine: str = "grouped",
    workers_require_parallel: bool = True,
    stacklevel: int = 3,
) -> ExecutionPolicy:
    """Merge a ``policy`` argument with legacy kwargs into one policy.

    The back-compat shim every redesigned entry point shares: pass
    ``policy=`` going forward; the old ``engine=`` / ``workers=`` /
    ``fallback=`` / ``retry=`` / ``injector=`` spellings still work but
    emit a ``DeprecationWarning`` naming ``where``.  Mixing ``policy=``
    with any legacy kwarg is a ``TypeError`` (ambiguous intent), and
    the historical ``ValueError`` for ``workers=`` with an engine whose
    capabilities reject worker pools is preserved
    (``workers_require_parallel=False`` lifts it
    for surfaces like ``PlanCache.warm`` where workers always meant a
    planning fan-out, not an engine pool).
    """
    legacy = {
        name: value
        for name, value in (
            ("engine", engine),
            ("workers", workers),
            ("fallback", fallback or None),
            ("retry", retry),
            ("injector", injector),
        )
        if value is not None
    }
    if policy is not None:
        if legacy:
            raise TypeError(
                f"{where}: pass either policy= or the legacy "
                f"{'/'.join(sorted(legacy))} keyword(s), not both"
            )
        return ExecutionPolicy.of(policy, warn_on_str=True)
    if not legacy:
        return ExecutionPolicy(engine=default_engine)
    warnings.warn(
        f"{where}: the {'/'.join(sorted(legacy))} keyword(s) are deprecated; "
        f"pass policy=repro.ExecutionPolicy(...) instead",
        DeprecationWarning,
        stacklevel=stacklevel,
    )
    resolved_engine = engine if engine is not None else default_engine
    if (
        workers is not None
        and workers_require_parallel
        and resolved_engine in ENGINES
        and not engine_accepts_workers(resolved_engine)
    ):
        raise ValueError(
            f"workers= only applies to the worker-pool engines "
            f"{WORKER_ENGINES}, not {resolved_engine!r}"
        )
    return ExecutionPolicy(
        engine=resolved_engine,
        workers=workers,
        fallback=bool(fallback),
        retry=retry,
        injector=injector,
    )
