"""Reference GEMM implementations every executor is checked against."""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.problem import GemmBatch, validate_operands


def reference_gemm(
    a: np.ndarray,
    b: np.ndarray,
    c: np.ndarray,
    alpha: float = 1.0,
    beta: float = 0.0,
) -> np.ndarray:
    """``alpha * A @ B + beta * C`` without modifying the inputs.

    Accumulation happens in float64 and is cast back to C's dtype,
    giving the executors a numerically tighter target than they need.
    """
    if a.ndim != 2 or b.ndim != 2 or c.ndim != 2:
        raise ValueError("A, B, C must be 2-D matrices")
    if a.shape[1] != b.shape[0]:
        raise ValueError(f"inner dimensions differ: A is {a.shape}, B is {b.shape}")
    if c.shape != (a.shape[0], b.shape[1]):
        raise ValueError(
            f"C shape {c.shape} does not match product shape {(a.shape[0], b.shape[1])}"
        )
    acc = a.astype(np.float64) @ b.astype(np.float64)
    out = alpha * acc + beta * c.astype(np.float64)
    return out.astype(c.dtype)


def reference_batched_gemm(
    batch: GemmBatch,
    operands: Sequence[tuple[np.ndarray, np.ndarray, np.ndarray]],
) -> list[np.ndarray]:
    """Reference result for every GEMM of a batch."""
    validate_operands(batch, operands)
    return [
        reference_gemm(g.op_a(a), g.op_b(b), c, alpha=g.alpha, beta=g.beta)
        for g, (a, b, c) in zip(batch, operands)
    ]
