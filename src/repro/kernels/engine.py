"""The typed engine registry: one surface for every executor.

Before this module, the five ``execute_*`` entry points (reference
walk, grouped, parallel, compiled, strided) were free functions that
:func:`repro.kernels.get_engine` mapped names onto with ad-hoc
``if``/``elif`` logic, and the reliability layer kept its own
``ENGINE_FALLBACKS`` table alongside.  Each new engine meant touching
every consumer.  This module gives each engine a small typed object --
the :class:`Engine` protocol -- so ``get_engine()``, the fallback
chains, the serving layer, and the CLIs all share one registry:

* ``name`` -- the stable string identity used in configs and CLIs;
* ``capabilities`` -- what the engine supports (worker pools, a
  precomputable lowered artifact), so callers can validate knobs
  generically instead of hard-coding ``if name == "parallel"``;
* ``lower(schedule, batch)`` -- derive the engine's per-schedule
  artifact (a ``GroupedPlan``, a ``CompiledPlan``; the reference walk
  has none and returns ``None``);
* ``run(schedule, batch, operands)`` -- execute, bit-identical across
  all engines;
* ``runner(workers)`` -- the raw executor callable, preserving the
  historical :func:`repro.kernels.get_engine` identity semantics
  (``runner()`` *is* ``execute_grouped`` for the grouped engine, so
  existing ``get_engine("grouped") is execute_grouped`` assertions and
  pickling behaviour keep working).

Engine implementations import their kernel modules lazily inside
methods, so importing this registry pulls in **no** kernel module --
the engines stay independently importable (CI guards this).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Optional, Protocol, Sequence, runtime_checkable

__all__ = [
    "ENGINES",
    "ENGINE_FALLBACKS",
    "Engine",
    "EngineCapabilities",
    "WORKER_ENGINES",
    "engine_accepts_workers",
    "engine_fallbacks",
    "get_engine_object",
]


@dataclass(frozen=True)
class EngineCapabilities:
    """What an execution engine supports.

    ``workers``: the engine runs on a sizable worker pool (the
    ``parallel`` thread engine and the ``procpool`` process engine;
    passing ``workers=`` to any other engine is a ``ValueError``).
    ``precompiled``: :meth:`Engine.lower` produces a reusable
    per-schedule artifact worth caching next to the plan.
    ``process_isolation``: workers are OS processes -- a worker death
    cannot corrupt the coordinator, and shards run truly concurrently
    (no GIL).  ``picklable_shards``: shard descriptors cross a process
    boundary, so task payloads must pickle (the procpool engine ships
    only arena names and index tuples).  ``min_work_flops``: below
    this much total product work the engine falls back to serial
    execution on its own -- dispatch overhead would dominate.
    """

    workers: bool = False
    precompiled: bool = False
    process_isolation: bool = False
    picklable_shards: bool = False
    min_work_flops: float = 0.0


@runtime_checkable
class Engine(Protocol):
    """The uniform surface every execution engine implements.

    All engines are bit-identical: ``run`` produces the same outputs
    for the same schedule/batch/operands regardless of which engine
    executes (the equivalence suites pin this).  They differ only in
    speed and in what :meth:`lower` precomputes.
    """

    name: str
    capabilities: EngineCapabilities

    def lower(self, schedule: Any, batch: Any) -> Any:
        """The engine's memoized per-schedule artifact (or ``None``)."""
        ...

    def run(
        self, schedule: Any, batch: Any, operands: Sequence, **kwargs: Any
    ) -> list:
        """Execute a batch schedule; bit-identical across engines."""
        ...

    def runner(self, workers: Optional[int] = None) -> Callable:
        """The raw executor callable (optionally binding ``workers``)."""
        ...


def _reject_workers(name: str, workers: Optional[int]) -> None:
    if workers is not None:
        raise ValueError(
            f"workers= only applies to the worker-pool engines "
            f"{WORKER_ENGINES}, not {name!r}"
        )


@dataclass(frozen=True)
class ReferenceEngine:
    """The per-slot Figure 7 walk (the oracle); no lowered artifact."""

    name: str = "reference"
    capabilities: EngineCapabilities = EngineCapabilities()

    def lower(self, schedule, batch):
        """The reference walk interprets the arrays directly: ``None``."""
        return None

    def run(self, schedule, batch, operands, **kwargs):
        """Execute via :func:`repro.kernels.persistent.execute_schedule`."""
        return self.runner()(schedule, batch, operands, **kwargs)

    def runner(self, workers: Optional[int] = None) -> Callable:
        """``execute_schedule`` itself (identity preserved for callers)."""
        _reject_workers(self.name, workers)
        from repro.kernels.persistent import execute_schedule

        return execute_schedule


@dataclass(frozen=True)
class GroupedEngine:
    """The grouped vectorized engine; lowers to a ``GroupedPlan``."""

    name: str = "grouped"
    capabilities: EngineCapabilities = EngineCapabilities()

    def lower(self, schedule, batch):
        """The memoized :class:`~repro.kernels.grouped.GroupedPlan`."""
        from repro.kernels.grouped import grouped_plan_for

        return grouped_plan_for(schedule, batch)

    def run(self, schedule, batch, operands, **kwargs):
        """Execute via :func:`repro.kernels.grouped.execute_grouped`."""
        return self.runner()(schedule, batch, operands, **kwargs)

    def runner(self, workers: Optional[int] = None) -> Callable:
        """``execute_grouped`` itself (identity preserved for callers)."""
        _reject_workers(self.name, workers)
        from repro.kernels.grouped import execute_grouped

        return execute_grouped


@dataclass(frozen=True)
class ParallelEngine:
    """The multi-worker sharded engine; accepts a ``workers`` pool size."""

    name: str = "parallel"
    capabilities: EngineCapabilities = EngineCapabilities(workers=True)

    def lower(self, schedule, batch):
        """The memoized grouped plan (sharding happens at run time)."""
        from repro.kernels.grouped import grouped_plan_for

        return grouped_plan_for(schedule, batch)

    def run(self, schedule, batch, operands, **kwargs):
        """Execute via :func:`repro.kernels.parallel.execute_parallel`."""
        return self.runner()(schedule, batch, operands, **kwargs)

    def runner(self, workers: Optional[int] = None) -> Callable:
        """``execute_parallel``, with ``workers`` bound when given."""
        from repro.kernels.parallel import execute_parallel, resolve_workers

        if workers is None:
            return execute_parallel
        bound = resolve_workers(workers)

        def run_parallel(schedule, batch, operands, plan=None):
            return execute_parallel(schedule, batch, operands, plan, workers=bound)

        run_parallel.__name__ = f"execute_parallel_{bound}w"
        run_parallel.workers = bound
        return run_parallel


@dataclass(frozen=True)
class CompiledEngine:
    """The compiled-plan engine; lowers to a ``CompiledPlan`` artifact."""

    name: str = "compiled"
    capabilities: EngineCapabilities = EngineCapabilities(precompiled=True)

    def lower(self, schedule, batch):
        """The memoized :class:`~repro.kernels.compiled.CompiledPlan`."""
        from repro.kernels.compiled import compiled_plan_for

        return compiled_plan_for(schedule, batch)

    def run(self, schedule, batch, operands, **kwargs):
        """Execute via :func:`repro.kernels.compiled.execute_compiled`."""
        return self.runner()(schedule, batch, operands, **kwargs)

    def runner(self, workers: Optional[int] = None) -> Callable:
        """``execute_compiled`` itself (identity preserved for callers)."""
        _reject_workers(self.name, workers)
        from repro.kernels.compiled import execute_compiled

        return execute_compiled


@dataclass(frozen=True)
class ProcpoolEngine:
    """The process-pool engine: worker processes over shm arenas.

    True multi-core execution -- each worker is an OS process computing
    its shards from shared-memory operand arenas, so the GIL never
    serializes product work.  Shard descriptors are pickled (tiny: an
    arena name plus index tuples), and batches below the break-even
    FLOP threshold execute serially through the grouped engine on
    their own (bit-identical either way).
    """

    name: str = "procpool"
    capabilities: EngineCapabilities = EngineCapabilities(
        workers=True,
        process_isolation=True,
        picklable_shards=True,
        min_work_flops=1e7,  # keep in sync with procpool.MIN_PROCPOOL_FLOPS
    )

    def lower(self, schedule, batch):
        """The memoized grouped plan (sharding happens at run time)."""
        from repro.kernels.grouped import grouped_plan_for

        return grouped_plan_for(schedule, batch)

    def run(self, schedule, batch, operands, **kwargs):
        """Execute via :func:`repro.kernels.procpool.execute_procpool`."""
        return self.runner()(schedule, batch, operands, **kwargs)

    def runner(self, workers: Optional[int] = None) -> Callable:
        """``execute_procpool``, with ``workers`` bound when given."""
        from repro.kernels.procpool import (
            execute_procpool,
            resolve_procpool_workers,
        )

        if workers is None:
            return execute_procpool
        bound = resolve_procpool_workers(workers)

        def run_procpool(schedule, batch, operands, plan=None):
            return execute_procpool(schedule, batch, operands, plan, workers=bound)

        run_procpool.__name__ = f"execute_procpool_{bound}w"
        run_procpool.workers = bound
        return run_procpool


_REGISTRY: dict[str, Engine] = {
    e.name: e
    for e in (
        ReferenceEngine(),
        GroupedEngine(),
        ParallelEngine(),
        CompiledEngine(),
        ProcpoolEngine(),
    )
}

#: The recognized execution-engine names.
ENGINES: tuple[str, ...] = tuple(_REGISTRY)

#: Engines whose capabilities accept a ``workers=`` pool size.
WORKER_ENGINES: tuple[str, ...] = tuple(
    name for name, e in _REGISTRY.items() if e.capabilities.workers
)

#: Degradation order per engine: itself first, then progressively
#: simpler engines ending at the per-slot reference walk (the oracle).
#: Every engine is bit-identical, so falling back trades only speed.
ENGINE_FALLBACKS: dict[str, tuple[str, ...]] = {
    "procpool": ("procpool", "compiled", "grouped", "reference"),
    "compiled": ("compiled", "grouped", "reference"),
    "parallel": ("parallel", "grouped", "reference"),
    "grouped": ("grouped", "reference"),
    "reference": ("reference",),
}


def engine_accepts_workers(name: str) -> bool:
    """Whether ``name``'s capabilities accept a ``workers=`` pool size."""
    return get_engine_object(name).capabilities.workers


def get_engine_object(name: str) -> Engine:
    """The :class:`Engine` registered under ``name``.

    Raises ``ValueError`` for unknown names (same message contract as
    :func:`repro.kernels.get_engine`).
    """
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown execution engine {name!r}; choose from {ENGINES}"
        ) from None


def engine_fallbacks(name: str) -> tuple[str, ...]:
    """The fallback chain starting at ``name`` (itself included).

    ``procpool`` degrades to ``compiled`` then ``grouped`` then
    ``reference``; ``compiled`` and ``parallel`` to ``grouped`` then
    ``reference``; ``grouped`` to ``reference``; ``reference`` stands
    alone.  The serving layer and
    :class:`~repro.reliability.ReliableExecutor` walk this chain when
    the preferred engine misbehaves.
    """
    get_engine_object(name)  # canonical unknown-engine ValueError
    return ENGINE_FALLBACKS[name]
