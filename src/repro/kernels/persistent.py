"""The persistent-threads batched kernel of Figure 7, functionally.

The CUDA kernel receives the five auxiliary arrays and, per thread
block, walks its assigned tile slots: parse the GEMM the tile belongs
to, its coordinates and its tiling strategy, then run the Figure 2 tile
loop.  ``execute_schedule`` performs exactly that walk in NumPy,
producing the numerical result of the whole batched GEMM.  Because it
consumes the same arrays the device would, it validates the schedule
end to end.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.problem import GemmBatch, validate_operands
from repro.core.schedule import BatchSchedule
from repro.core.tiling import strategy_by_index
from repro.kernels.tiled import compute_tile, thread_level_tile
from repro.telemetry import get_tracer


def execute_schedule(
    schedule: BatchSchedule,
    batch: GemmBatch,
    operands: Sequence[tuple[np.ndarray, np.ndarray, np.ndarray]],
    thread_level: bool = False,
) -> list[np.ndarray]:
    """Execute a batch schedule numerically; returns the C results.

    Inputs are not modified.  Raises ``ValueError`` when operand shapes
    do not match the batch, or when the schedule does not cover every
    output element exactly once (a schedule-construction bug).
    """
    tracer = get_tracer()
    with tracer.span(
        "execute.schedule",
        blocks=schedule.num_blocks,
        tiles=schedule.num_tiles,
        thread_level=thread_level,
    ):
        tracer.counter("tiles_executed", schedule.num_tiles)
        return _execute_schedule(schedule, batch, operands, thread_level)


def _execute_schedule(
    schedule: BatchSchedule,
    batch: GemmBatch,
    operands: Sequence[tuple[np.ndarray, np.ndarray, np.ndarray]],
    thread_level: bool = False,
) -> list[np.ndarray]:
    validate_operands(batch, operands)

    outputs = [np.zeros((g.m, g.n), dtype=op[2].dtype) for g, op in zip(batch, operands)]
    coverage = [np.zeros((g.m, g.n), dtype=np.int32) for g in batch]
    # op(A)/op(B) views, derived once per GEMM rather than per tile slot.
    op_views = [(g.op_a(op[0]), g.op_b(op[1])) for g, op in zip(batch, operands)]

    # Main loop over blocks, then tiles per block (Figure 7 lines 1-18).
    for block_id in range(schedule.num_blocks):
        begin = int(schedule.tile_offsets[block_id])
        end = int(schedule.tile_offsets[block_id + 1])
        for slot in range(begin, end):
            ind = int(schedule.gemm_ids[slot])
            gemm = batch[ind]
            c = operands[ind][2]
            a, b = op_views[ind]
            strat = strategy_by_index(int(schedule.strategy_ids[slot]))
            ty = int(schedule.y_coords[slot])
            tx = int(schedule.x_coords[slot])
            y0 = ty * strat.by
            x0 = tx * strat.bx
            if thread_level:
                acc = thread_level_tile(a, b, y0, x0, strat)
            else:
                acc = compute_tile(a, b, y0, x0, strat.by, strat.bx, strat.bk)
            y_hi = min(y0 + strat.by, gemm.m)
            x_hi = min(x0 + strat.bx, gemm.n)
            valid = acc[: y_hi - y0, : x_hi - x0]
            outputs[ind][y0:y_hi, x0:x_hi] = (
                gemm.alpha * valid
                + gemm.beta * c[y0:y_hi, x0:x_hi].astype(np.float64)
            ).astype(c.dtype)
            coverage[ind][y0:y_hi, x0:x_hi] += 1

    for i, cov in enumerate(coverage):
        if not np.all(cov == 1):
            uncovered = int(np.sum(cov == 0))
            duplicated = int(np.sum(cov > 1))
            raise ValueError(
                f"schedule does not tile GEMM {i} exactly once: "
                f"{uncovered} elements uncovered, {duplicated} covered repeatedly"
            )
    return outputs
