"""Latency distributions and serving-report rendering.

Serving performance is a *distribution* question: the mean hides the
tail that deadlines care about, so the serving layer reports p50/p95/
p99 alongside throughput and batch occupancy.  :class:`LatencyStats`
summarizes a sample of latencies; :func:`render_serve_report` formats
a :class:`repro.serve.driver.ServeReport` (accessed by attribute, so
this module stays import-independent of :mod:`repro.serve`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

import numpy as np

from repro.analysis.report import format_table


def percentile_us(values: Iterable[float], q: float) -> float:
    """The ``q``-th percentile (linear interpolation; 0 for no data)."""
    arr = np.asarray(list(values), dtype=np.float64)
    if arr.size == 0:
        return 0.0
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile must be in [0, 100], got {q}")
    return float(np.percentile(arr, q))


@dataclass(frozen=True)
class LatencyStats:
    """Summary of one latency sample (microseconds)."""

    count: int
    mean_us: float
    p50_us: float
    p95_us: float
    p99_us: float
    max_us: float

    @classmethod
    def from_us(cls, values: Iterable[float]) -> "LatencyStats":
        arr = np.asarray(list(values), dtype=np.float64)
        if arr.size == 0:
            return cls(count=0, mean_us=0.0, p50_us=0.0, p95_us=0.0, p99_us=0.0, max_us=0.0)
        return cls(
            count=int(arr.size),
            mean_us=float(arr.mean()),
            p50_us=float(np.percentile(arr, 50)),
            p95_us=float(np.percentile(arr, 95)),
            p99_us=float(np.percentile(arr, 99)),
            max_us=float(arr.max()),
        )

    def to_dict(self) -> dict:
        """Return the stats as a JSON-compatible dict."""
        return {
            "count": self.count,
            "mean_us": self.mean_us,
            "p50_us": self.p50_us,
            "p95_us": self.p95_us,
            "p99_us": self.p99_us,
            "max_us": self.max_us,
        }


def render_serve_report(report) -> str:
    """Human-readable summary of one serving run.

    ``report`` is any object with the :class:`ServeReport` attributes
    (requests/outcome counters, ``latency`` / ``queue_latency``
    :class:`LatencyStats`, occupancy and cache fields).
    """
    out = []
    out.append(
        f"served {report.n_requests} requests in "
        f"{report.makespan_us / 1e3:.2f} ms of {report.time_base} time "
        f"({report.throughput_rps:.0f} completed/s)"
    )
    out.append(
        format_table(
            ["outcome", "count", "share"],
            [
                ["completed", report.n_completed, _share(report.n_completed, report.n_requests)],
                ["rejected (queue full)", report.n_rejected_queue, _share(report.n_rejected_queue, report.n_requests)],
                ["shed (deadline)", report.n_shed_deadline, _share(report.n_shed_deadline, report.n_requests)],
                ["rejected (other)", report.n_rejected_other, _share(report.n_rejected_other, report.n_requests)],
                ["timed out", report.n_timed_out, _share(report.n_timed_out, report.n_requests)],
            ],
        )
    )
    lat, qlat = report.latency, report.queue_latency
    out.append(
        format_table(
            ["latency (us)", "mean", "p50", "p95", "p99", "max"],
            [
                ["end-to-end", lat.mean_us, lat.p50_us, lat.p95_us, lat.p99_us, lat.max_us],
                ["queueing", qlat.mean_us, qlat.p50_us, qlat.p95_us, qlat.p99_us, qlat.max_us],
            ],
        )
    )
    out.append(
        f"batches: {report.n_batches} formed, occupancy "
        f"mean {report.mean_occupancy:.2f} / max {report.max_occupancy} "
        f"(cap {report.max_batch_size})"
    )
    if report.n_deadline_misses:
        out.append(
            f"deadline misses (completed late): {report.n_deadline_misses}"
        )
    cache = report.cache
    out.append(
        f"plan cache: {cache.hits} hits / {cache.misses} misses "
        f"({cache.hit_rate:.1%} hit rate), {cache.evictions} evictions"
    )
    return "\n".join(out)


def render_cluster_report(report) -> str:
    """Human-readable summary of one cluster run.

    ``report`` is any object with the
    :class:`repro.cluster.report.ClusterReport` attributes (tier-level
    counters, a ``latency`` :class:`LatencyStats`, and per-shard
    :class:`ShardSummary` entries under ``shards``).  Accessed by
    attribute, so this module stays import-independent of
    :mod:`repro.cluster`.
    """
    out = []
    out.append(
        f"cluster of {report.n_shards} shards served "
        f"{report.n_requests} requests in "
        f"{report.makespan_us / 1e3:.2f} ms of {report.time_base} time "
        f"({report.goodput_rps:.0f} completed/s goodput)"
    )
    out.append(
        f"settlement {report.settlement_share:.1%} "
        f"({report.n_settled}/{report.n_requests} settled, "
        f"{report.n_stranded} stranded), "
        f"completed {report.completed_share:.1%}, "
        f"{report.n_rejected_global} rejected at the tier, "
        f"{report.n_rejected_error} typed errors"
    )
    out.append(
        f"routing: {report.n_steals} steals, {report.n_failovers} failovers"
    )
    sup = getattr(report, "supervisor", None)
    if sup is not None:
        out.append(
            f"supervision: {sup.get('restarts', 0)} restarts, "
            f"{sup.get('resubmissions', 0)} failover resubmissions, "
            f"{sup.get('budget_exhausted', 0)} budget-exhausted, "
            f"{sup.get('failover_exhausted', 0)} failover-exhausted, "
            f"ejected {sorted(sup.get('ejected', [])) or 'none'}"
        )
    lat = report.latency
    out.append(
        format_table(
            ["latency (us)", "mean", "p50", "p95", "p99", "max"],
            [["end-to-end", lat.mean_us, lat.p50_us, lat.p95_us, lat.p99_us, lat.max_us]],
        )
    )
    rows = []
    for s in report.shards:
        r = s.report
        bloom = s.bloom
        rows.append(
            [
                f"shard-{s.shard_id}",
                s.state,
                s.n_assigned,
                r.n_completed,
                r.n_rejected_error,
                f"{r.cache.hit_rate:.1%}",
                "-" if bloom is None else bloom["deferred"],
            ]
        )
    out.append(
        format_table(
            ["shard", "state", "assigned", "completed", "errors", "hit rate", "bloom deferred"],
            rows,
        )
    )
    return "\n".join(out)


def _share(part: int, whole: int) -> str:
    return f"{part / whole:.1%}" if whole else "-"
