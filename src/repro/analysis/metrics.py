"""Speedup and throughput metrics."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from repro.core.problem import GemmBatch


def speedup(baseline_ms: float, candidate_ms: float) -> float:
    """How many times faster the candidate is than the baseline."""
    if baseline_ms <= 0 or candidate_ms <= 0:
        raise ValueError("times must be positive")
    return baseline_ms / candidate_ms


def geomean(values: Iterable[float]) -> float:
    """Geometric mean -- the right average for speedup ratios."""
    arr = np.asarray(list(values), dtype=np.float64)
    if arr.size == 0:
        raise ValueError("geomean of an empty sequence")
    if np.any(arr <= 0):
        raise ValueError("geomean requires positive values")
    return float(np.exp(np.mean(np.log(arr))))


def achieved_tflops(batch: GemmBatch, time_ms: float) -> float:
    """Achieved FP32 throughput of a batch execution."""
    if time_ms <= 0:
        raise ValueError(f"time_ms must be positive, got {time_ms}")
    return batch.total_flops / (time_ms * 1e-3) / 1e12


@dataclass(frozen=True)
class SpeedupSummary:
    """Distribution statistics of a set of speedups."""

    count: int
    geomean: float
    minimum: float
    maximum: float
    wins: int  # cases with speedup > 1

    @property
    def win_rate(self) -> float:
        return self.wins / self.count if self.count else 0.0

    def __str__(self) -> str:
        return (
            f"{self.count} cases: geomean {self.geomean:.2f}X "
            f"(min {self.minimum:.2f}X, max {self.maximum:.2f}X, "
            f"wins {self.wins}/{self.count})"
        )


def summarize_speedups(values: Sequence[float]) -> SpeedupSummary:
    """Summary statistics over a list of speedup ratios."""
    if not values:
        raise ValueError("no speedups to summarize")
    arr = np.asarray(values, dtype=np.float64)
    return SpeedupSummary(
        count=len(values),
        geomean=geomean(values),
        minimum=float(arr.min()),
        maximum=float(arr.max()),
        wins=int(np.sum(arr > 1.0)),
    )
