"""Metrics and report formatting shared by experiments and benches."""

from repro.analysis.metrics import (
    speedup,
    geomean,
    achieved_tflops,
    SpeedupSummary,
    summarize_speedups,
)
from repro.analysis.report import (
    format_table,
    format_histogram_row,
    format_grid,
)
from repro.analysis.latency import (
    LatencyStats,
    percentile_us,
    render_cluster_report,
    render_serve_report,
)
from repro.analysis.timeline import build_timeline, render_timeline
from repro.analysis.spantree import render_plan_trace
from repro.analysis.export import rows_to_csv, fig_cells_to_csv, write_bench_json
from repro.telemetry import render_span_tree

__all__ = [
    "speedup",
    "geomean",
    "achieved_tflops",
    "SpeedupSummary",
    "summarize_speedups",
    "format_table",
    "format_histogram_row",
    "format_grid",
    "LatencyStats",
    "percentile_us",
    "render_cluster_report",
    "render_serve_report",
    "build_timeline",
    "render_timeline",
    "render_plan_trace",
    "render_span_tree",
    "rows_to_csv",
    "fig_cells_to_csv",
    "write_bench_json",
]
