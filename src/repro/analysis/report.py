"""Plain-text report formatting for experiment drivers.

The experiment scripts print the same rows/series the paper's tables
and figures report; these helpers keep the formatting consistent.
"""

from __future__ import annotations

from typing import Mapping, Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """Fixed-width text table (floats rendered with two decimals)."""
    if not headers:
        raise ValueError("a table needs headers")
    rendered = [
        [f"{c:.2f}" if isinstance(c, float) else str(c) for c in row] for row in rows
    ]
    for i, row in enumerate(rendered):
        if len(row) != len(headers):
            raise ValueError(
                f"row {i} has {len(row)} cells, expected {len(headers)}"
            )
    widths = [
        max(len(h), *(len(r[i]) for r in rendered)) if rendered else len(h)
        for i, h in enumerate(headers)
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_histogram_row(
    label: str, values: Mapping[int, float], bar_unit: float = 0.1, bar_char: str = "#"
) -> str:
    """One histogram of the Figure 8/9 style: speedup bars over K.

    Bars are scaled so ``bar_unit`` of speedup above 1.0 prints one
    ``bar_char``; a 1.0X case prints an empty bar.
    """
    lines = [label]
    for k in sorted(values):
        v = values[k]
        bar = bar_char * max(0, round((v - 1.0) / bar_unit))
        lines.append(f"  K={k:<5d} {v:5.2f}X |{bar}")
    return "\n".join(lines)


def format_grid(
    cell_labels: Sequence[str],
    cells: Sequence[str],
    columns: int,
) -> str:
    """Arrange pre-rendered histogram cells in a grid, column-major
    batch sizes x row-major M=N, as the paper lays Figure 8 out."""
    if columns < 1:
        raise ValueError("columns must be >= 1")
    if len(cell_labels) != len(cells):
        raise ValueError("labels and cells must align")
    blocks = []
    for i in range(0, len(cells), columns):
        row = cells[i : i + columns]
        blocks.append("\n\n".join(row))
        blocks.append("=" * 60)
    return "\n".join(blocks[:-1]) if blocks else ""
