"""CSV/JSON export of experiment and benchmark results.

Reproduction consumers typically want the raw series to plot against
the paper's figures; every experiment's structured results can be
written as CSV with these helpers (standard library only).
:func:`write_bench_json` persists benchmark records (e.g.
``BENCH_execute.json``) in a stable, diff-friendly layout so committed
perf snapshots form a trajectory across revisions.
"""

from __future__ import annotations

import csv
import dataclasses
import json
from pathlib import Path
from typing import Mapping, Sequence


def rows_to_csv(path: str | Path, rows: Sequence, fields: Sequence[str] | None = None) -> None:
    """Write a sequence of dataclass instances (or mappings) as CSV.

    ``fields`` selects/orders columns; by default every dataclass field
    (or mapping key) of the first row is written.  Computed properties
    can be included by naming them in ``fields``.
    """
    rows = list(rows)
    if not rows:
        raise ValueError("no rows to export")
    first = rows[0]
    if fields is None:
        if dataclasses.is_dataclass(first):
            fields = [f.name for f in dataclasses.fields(first)]
        elif isinstance(first, dict):
            fields = list(first)
        else:
            raise TypeError(
                f"cannot infer columns from {type(first).__name__}; pass fields="
            )

    def cell(row, name):
        value = row[name] if isinstance(row, dict) else getattr(row, name)
        if dataclasses.is_dataclass(value) or isinstance(value, (list, tuple, dict)):
            raise TypeError(
                f"column {name!r} holds a composite value; export scalars only"
            )
        return value

    with open(path, "w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(fields)
        for row in rows:
            writer.writerow([cell(row, name) for name in fields])


def write_bench_json(path: str | Path, record: Mapping) -> None:
    """Write one benchmark record as deterministic, diff-friendly JSON.

    Keys are sorted and the file ends with a newline so committed
    benchmark snapshots produce minimal diffs run-to-run.  Values must
    be JSON-serializable (floats should be pre-rounded by the caller
    if run-to-run noise would churn the diff).
    """
    with open(path, "w") as fh:
        json.dump(dict(record), fh, indent=1, sort_keys=True)
        fh.write("\n")


def fig_cells_to_csv(path: str | Path, cells: Sequence) -> None:
    """Export Figure 8/9 cells with their derived speedup columns."""
    derived = []
    for c in cells:
        entry = {
            "mn": c.mn,
            "k": c.k,
            "batch_size": c.batch_size,
            "ours_ms": c.ours_ms,
            "magma_ms": c.magma_ms,
            "speedup": c.speedup,
        }
        if hasattr(c, "tiling_only_ms"):
            entry["tiling_only_ms"] = c.tiling_only_ms
            entry["batching_contribution"] = c.batching_contribution
        derived.append(entry)
    rows_to_csv(path, derived)
