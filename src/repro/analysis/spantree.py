"""Combined planning-trace view: span tree plus execution timeline.

The span tree (:func:`repro.telemetry.render_span_tree`) shows where
*planning wall time* went -- tiling, batching, schedule build, the
``best``-mode candidate simulations; the ASCII timeline
(:func:`repro.analysis.timeline.render_timeline`) shows where
*simulated device time* goes for the plan that won.  Rendering them
together is the one-page diagnostic for "why did planning take this
long, and was the schedule worth it".
"""

from __future__ import annotations

from typing import Optional, Union

from repro.analysis.timeline import render_timeline
from repro.gpu.specs import DeviceSpec
from repro.telemetry import Span, Tracer, render_span_tree


def render_plan_trace(
    tracer: Union[Tracer, Span],
    device: Optional[DeviceSpec] = None,
    report=None,
    width: int = 72,
    max_slots: int = 8,
) -> str:
    """Render a recorded trace, optionally alongside a plan's timeline.

    Parameters
    ----------
    tracer:
        A recording tracer (or a single span subtree) captured around
        planning, e.g. via ``with tracing() as t: fw.plan(batch)``.
    device, report:
        When both are given, the plan's simulated block timeline is
        appended under the span tree (``report`` is a
        :class:`~repro.core.framework.PlanReport`).
    width, max_slots:
        Forwarded to the timeline renderer.
    """
    sections = ["planning trace:", render_span_tree(tracer)]
    if isinstance(tracer, Tracer):
        counters = tracer.metrics.to_dict()["counters"]
        if counters:
            sections.append(
                "counters: "
                + ", ".join(f"{k}={v}" for k, v in counters.items())
            )
    if device is not None and report is not None:
        precision = (
            report.options.precision
            if report.options is not None and report.options.precision
            else "fp32"
        )
        blocks = report.schedule.block_works(report.batch, precision=precision)
        sections.append("")
        sections.append("simulated schedule timeline:")
        sections.append(
            render_timeline(
                device,
                blocks,
                float(report.batch.compulsory_ab_bytes),
                width=width,
                max_slots=max_slots,
            )
        )
    return "\n".join(sections)
