"""ASCII timeline rendering of a simulated kernel schedule.

Given a launch, render how blocks pack onto SM residency slots over
time -- the visual intuition behind waves, tails, and why batching
monster blocks hurts.  Text-only (this repository ships no plotting
dependency); each row is one slot, each glyph one time bucket.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Sequence

from repro.gpu.costmodel import BlockWork
from repro.gpu.occupancy import occupancy
from repro.gpu.simulator import _converge_kernel
from repro.gpu.specs import DeviceSpec

#: Glyphs cycle per block so adjacent blocks are distinguishable.
_GLYPHS = "#@%*+=o"


@dataclass(frozen=True)
class TimelineSlot:
    """One residency slot's occupancy segments: (start, end, block_id)."""

    segments: tuple[tuple[float, float, int], ...]


def build_timeline(
    device: DeviceSpec,
    blocks: Sequence[BlockWork],
    compulsory_ab_bytes: float | None = None,
    max_slots: int = 16,
) -> tuple[list[TimelineSlot], float]:
    """List-schedule the launch and return per-slot segments + makespan.

    Only the first ``max_slots`` slots are materialized (a V100 can
    have 560+; the picture repeats).
    """
    if not blocks:
        raise ValueError("no blocks to render")
    first = blocks[0]
    occ = occupancy(
        device, first.threads, first.registers_per_thread, first.shared_memory_bytes
    )
    if occ.blocks_per_sm == 0:
        raise ValueError("unlaunchable footprint")
    durations, makespan, _conc, _ctx = _converge_kernel(
        device, blocks, occ.blocks_per_sm, compulsory_ab_bytes
    )
    slots = device.num_sms * occ.blocks_per_sm
    heap = [(0.0, i) for i in range(slots)]
    heapq.heapify(heap)
    segments: list[list[tuple[float, float, int]]] = [[] for _ in range(slots)]
    for block_id, d in enumerate(durations):
        start, slot = heapq.heappop(heap)
        end = start + d
        segments[slot].append((start, end, block_id))
        heapq.heappush(heap, (end, slot))
    out = [TimelineSlot(segments=tuple(s)) for s in segments[:max_slots]]
    return out, makespan


def render_timeline(
    device: DeviceSpec,
    blocks: Sequence[BlockWork],
    compulsory_ab_bytes: float | None = None,
    width: int = 72,
    max_slots: int = 12,
) -> str:
    """Render the launch as an ASCII gantt chart.

    Each row is one SM residency slot; time flows left to right across
    ``width`` buckets; '.' is idle.
    """
    if width < 8:
        raise ValueError(f"width must be >= 8, got {width}")
    slots, makespan = build_timeline(device, blocks, compulsory_ab_bytes, max_slots)
    if makespan <= 0:
        makespan = 1.0
    scale = width / makespan
    lines = [
        f"makespan {device.cycles_to_ms(makespan) * 1e3:.1f} us across "
        f"{len(blocks)} blocks ('.'=idle, one row per SM slot, "
        f"first {len(slots)} slots):"
    ]
    for si, slot in enumerate(slots):
        row = ["."] * width
        for start, end, block_id in slot.segments:
            lo = min(width - 1, int(start * scale))
            hi = min(width, max(lo + 1, int(end * scale)))
            glyph = _GLYPHS[block_id % len(_GLYPHS)]
            for x in range(lo, hi):
                row[x] = glyph
        lines.append(f"slot{si:3d} |{''.join(row)}|")
    return "\n".join(lines)
