"""The live serving loop: a threaded queue/batcher/planner/worker pipeline.

:class:`GemmServer` is the wall-clock twin of the virtual-time replay
driver, built from the same parts (``DynamicBatcher``,
``AdmissionController``, ``PlannerStage`` over a shared thread-safe
``PlanCache``) wired to real threads:

* ``submit()`` runs admission control inline and returns a
  :class:`ServeTicket` immediately (pre-resolved when rejected);
* one **batcher thread** waits on a condition variable and forms
  batches on the size/window triggers;
* ``config.workers`` **worker threads** pop formed batches, plan them
  through the cache, and resolve tickets -- numerically (the
  execution engine named by ``config.execution_policy()``, grouped by
  default; the ``compiled`` engine reuses a precompiled artifact per
  cached schedule so warm requests skip lowering and compilation)
  when every request in the batch carries operands, otherwise on the
  device model (the simulator);
* ``close(drain=True)`` stops admissions, flushes whatever is pending
  through the pipeline, and joins every thread.

**Fault tolerance** (``config.reliability``, see
``docs/reliability.md``): planning and execution failures are retried
per the :class:`~repro.reliability.RetryPolicy`; engine failures
degrade along the fallback chain (``procpool`` -> ``compiled`` ->
``grouped`` -> ``reference``, or ``compiled``/``parallel`` ->
``grouped`` -> ``reference``) guarded by per-engine circuit breakers
(:class:`~repro.reliability.ReliableExecutor`); a batch that still
fails is **bisected** so healthy requests complete and only the poison
request is rejected with a typed ``error:<ExcName>`` reason.  The
batcher and worker loops carry crash barriers -- a fatal error settles
every outstanding ticket instead of stranding clients -- and
:meth:`close` finishes with a stranded-ticket sweep so
``ServeTicket.result()`` can never hang past shutdown.
:meth:`health` exposes breaker states, retry/fallback/bisection
counts, and queue depth at runtime.

Latency and occupancy are recorded internally (wall-clock) and
compiled by :meth:`summary` into the same :class:`ServeReport` the
replay driver produces.  Telemetry note: the process-global tracer is
not thread-safe, so the server does **not** emit spans/metrics from
its worker threads; :meth:`summary` emits the aggregate counters and
histograms in the calling thread instead.  For deterministic,
fully-traced runs use :func:`repro.serve.driver.replay_trace`.
"""

from __future__ import annotations

import itertools
import queue
import threading
import time
from typing import Any, Callable, Optional, Sequence

import numpy as np

from repro.core.framework import CoordinatedFramework
from repro.core.plancache import PlanCache
from repro.core.problem import Gemm
from repro.kernels import engine_accepts_workers
from repro.reliability import (
    BreakerState,
    EngineUnavailable,
    FaultInjector,
    ReliableExecutor,
)
from repro.serve.admission import AdmissionController
from repro.serve.batcher import DynamicBatcher, FormedBatch
from repro.serve.budget import BudgetExhausted, DeadlineBudget
from repro.serve.config import ServeConfig
from repro.serve.planner import PlannerStage
from repro.serve.report import ServeReport, compile_report
from repro.serve.request import (
    REASON_BUDGET_EXHAUSTED,
    REASON_DEADLINE,
    REASON_SHUTDOWN,
    REASON_STRANDED,
    Completed,
    Rejected,
    ServeRequest,
    ServeResult,
    TimedOut,
    error_reason,
)
from repro.telemetry import get_tracer


class ServeTicket:
    """Caller-facing handle for one submitted request."""

    def __init__(self, request_id: int):
        self.request_id = request_id
        self._event = threading.Event()
        self._result: Optional[ServeResult] = None

    def done(self) -> bool:
        """True once the request has settled (result available)."""
        return self._event.is_set()

    def result(self, timeout: Optional[float] = None) -> ServeResult:
        """Block until the request resolves (raises TimeoutError else)."""
        if not self._event.wait(timeout):
            raise TimeoutError(
                f"request {self.request_id} unresolved after {timeout}s"
            )
        assert self._result is not None
        return self._result

    def _resolve(self, result: ServeResult) -> None:
        self._result = result
        self._event.set()


class GemmServer:
    """An online dynamic-batching GEMM server over the device model.

    Parameters
    ----------
    framework:
        The planner/executor; defaults to a V100
        :class:`CoordinatedFramework`.
    config:
        Pipeline knobs (:class:`ServeConfig`), including the
        fault-tolerance policy in ``config.reliability``.
    cache:
        Optional pre-warmed :class:`PlanCache` shared by the workers;
        a private one (capacity 256) is created otherwise.
    clock:
        Monotonic seconds source, injectable for tests; all request
        timestamps are microseconds since server construction.
    """

    def __init__(
        self,
        framework: Optional[CoordinatedFramework] = None,
        config: Optional[ServeConfig] = None,
        *,
        cache: Optional[PlanCache] = None,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.framework = framework if framework is not None else CoordinatedFramework()
        self.config = config if config is not None else ServeConfig()
        self._clock = clock
        self._t0 = clock()
        self._sleep: Callable[[float], None] = time.sleep
        reliability = self.config.reliability
        self._injector: Optional[FaultInjector] = (
            FaultInjector(reliability.fault_plan)
            if reliability.fault_plan is not None
            else None
        )
        policy = self.config.execution_policy()
        self._executor = ReliableExecutor(
            policy.engine,
            workers=policy.workers if engine_accepts_workers(policy.engine) else None,
            retry=reliability.retry,
            fallback=reliability.fallback,
            failure_threshold=reliability.breaker_failure_threshold,
            cooldown_s=reliability.breaker_cooldown_s,
            injector=self._injector,
            clock=clock,
        )
        self._batcher = DynamicBatcher(self.config.batcher)
        self._admission = AdmissionController(self.config.admission)
        self._planner = PlannerStage(
            self.framework,
            cache,
            heuristic=self.config.heuristic,
            miss_overhead_us=self.config.miss_overhead_us,
            hit_overhead_us=self.config.hit_overhead_us,
            injector=self._injector,
        )
        self._cond = threading.Condition()
        self._batch_q: "queue.Queue[Optional[FormedBatch]]" = queue.Queue()
        self._tickets: dict[int, ServeTicket] = {}
        self._next_id = itertools.count()
        self._accepting = True
        self._closing = False
        self._drain = True
        self._shutdown_reason = REASON_SHUTDOWN
        self._started = False
        self._closed = False
        self._threads: list[threading.Thread] = []
        # wall-clock measurements, guarded by _stats_lock
        self._stats_lock = threading.Lock()
        self._results: list[ServeResult] = []
        self._occupancies: list[int] = []
        self._formed_batches: list = []
        self._first_arrival_us: Optional[float] = None
        self._last_finish_us = 0.0
        self._planner_retries = 0
        self._bisections = 0
        self._budget_exhausted = 0
        self._crashes: list[str] = []

    @property
    def cache(self) -> PlanCache:
        """The shared plan cache (e.g. for :meth:`PlanCache.warm`)."""
        return self._planner.cache

    @property
    def injector(self) -> Optional[FaultInjector]:
        """The chaos harness, when a fault plan is configured."""
        return self._injector

    def _now_us(self) -> float:
        return (self._clock() - self._t0) * 1e6

    # -- lifecycle ---------------------------------------------------

    def start(self) -> "GemmServer":
        """Spawn the batcher thread and the worker pool (idempotent)."""
        if self._started:
            return self
        self._started = True
        batcher = threading.Thread(
            target=self._batch_loop, name="serve-batcher", daemon=True
        )
        self._threads.append(batcher)
        for i in range(self.config.workers):
            self._threads.append(
                threading.Thread(
                    target=self._worker_loop, name=f"serve-worker-{i}", daemon=True
                )
            )
        for t in self._threads:
            t.start()
        return self

    def close(self, drain: bool = True, timeout_s: float = 30.0) -> None:
        """Stop admissions, settle every pending request, join threads.

        ``drain=True`` (the default) pushes everything still queued
        through the pipeline; ``drain=False`` rejects pending requests
        with ``reason="shutdown"`` -- including batches already formed
        but not yet picked up by a worker.  Either way the method ends
        with a stranded-ticket sweep, so no :meth:`ServeTicket.result`
        call can hang past the configured join timeout.
        """
        with self._cond:
            if self._closed:
                return
            self._accepting = False
            self._closing = True
            self._drain = drain
            self._closed = True
            self._cond.notify_all()
        if self._started:
            for t in self._threads:
                t.join(timeout=timeout_s)
        else:
            # Never started: settle pending synchronously in this thread.
            self._settle_pending(drain)
            while True:
                try:
                    fb = self._batch_q.get_nowait()
                except queue.Empty:
                    break
                if fb is None:
                    continue
                if drain:
                    self._serve_batch(fb)
                else:
                    self._reject_requests(fb.requests, self._shutdown_reason)
        self._sweep_stranded()

    def kill(self, reason: str = "error:Killed", timeout_s: float = 30.0) -> None:
        """Simulate a crash: settle everything held with a typed reason.

        Like ``close(drain=False)`` but pending and formed-but-unserved
        requests reject with ``reason`` instead of ``"shutdown"`` --
        the cluster tier uses this to model a shard dying mid-run
        (``error:ShardKilled``) so every ticket still settles, typed as
        a casualty rather than an orderly shutdown.
        """
        with self._cond:
            if not self._closed:
                self._shutdown_reason = reason
        self.close(drain=False, timeout_s=timeout_s)

    def __enter__(self) -> "GemmServer":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close(drain=exc_type is None)

    # -- submission --------------------------------------------------

    def submit(
        self,
        gemm: Gemm,
        *,
        operands: Any = None,
        deadline_us: Optional[float] = None,
        timeout_us: Optional[float] = None,
        priority: int = 0,
        precision: Optional[str] = None,
    ) -> ServeTicket:
        """Submit one GEMM; never blocks.

        ``deadline_us`` is relative to now (converted to the server's
        absolute clock); ``operands`` is an optional ``(A, B)`` pair or
        ``(A, B, C)`` triple -- when every request in a formed batch
        carries operands, the batch executes numerically and each
        :class:`Completed` result carries its C output in ``value``.
        ``precision`` pins the storage precision the request should be
        planned and executed at; left ``None``, float16 operands infer
        ``"fp16"`` (bf16 rides float32 containers and cannot be
        inferred -- pin it explicitly).
        """
        if operands is not None and len(operands) == 2:
            a, b = operands
            # Accumulate in the promoted type so a mixed-dtype A/B pair
            # (e.g. float32 x float64) does not silently downcast C.
            operands = (
                a,
                b,
                np.zeros((gemm.m, gemm.n), dtype=np.result_type(a, b)),
            )
        if precision is None and operands is not None:
            from repro.core.precision import infer_precision

            inferred = infer_precision([operands])
            precision = None if inferred is None else inferred.value
        with self._cond:
            rid = next(self._next_id)
            now_us = self._now_us()
            request = ServeRequest(
                request_id=rid,
                gemm=gemm,
                arrival_us=now_us,
                deadline_us=None if deadline_us is None else now_us + deadline_us,
                timeout_us=timeout_us,
                priority=priority,
                operands=operands,
                precision=precision,
            )
            ticket = ServeTicket(rid)
            self._tickets[rid] = ticket
            with self._stats_lock:
                if self._first_arrival_us is None:
                    self._first_arrival_us = now_us
            if not self._accepting:
                self._resolve(
                    Rejected(
                        request_id=rid,
                        finish_us=now_us,
                        latency_us=0.0,
                        reason=REASON_SHUTDOWN,
                    )
                )
                return ticket
            rejection = self._admission.admit(
                request, self._batcher.pending_count, now_us
            )
            if rejection is not None:
                self._resolve(rejection)
                return ticket
            self._batcher.offer(request)
            self._cond.notify_all()
            return ticket

    # -- pipeline threads --------------------------------------------

    def _batch_loop(self) -> None:
        try:
            while True:
                formed: Optional[FormedBatch] = None
                with self._cond:
                    while not self._closing:
                        now_us = self._now_us()
                        formed = self._batcher.poll(now_us)
                        if formed is not None:
                            break
                        window = self._batcher.window_deadline_us()
                        wait_s = (
                            None
                            if window is None
                            else max((window - now_us) / 1e6, 1e-4)
                        )
                        self._cond.wait(timeout=wait_s)
                    if self._closing and formed is None:
                        self._settle_pending(self._drain)
                        for _ in range(self.config.workers):
                            self._batch_q.put(None)
                        return
                if formed is not None:
                    self._handle_formed(formed)
        except BaseException as exc:  # crash barrier: never strand clients
            self._fatal("batch-loop", exc)

    def _settle_pending(self, drain: bool) -> None:
        now_us = self._now_us()
        if drain:
            for fb in self._batcher.flush(now_us):
                self._handle_formed(fb)
        else:
            self._reject_requests(
                self._batcher.drain_pending(), self._shutdown_reason
            )

    def _handle_formed(self, formed: FormedBatch) -> None:
        self._reject_requests(formed.shed, REASON_DEADLINE)
        if formed.requests:
            with self._stats_lock:
                self._occupancies.append(formed.occupancy)
                self._formed_batches.append(formed.to_gemm_batch())
            self._batch_q.put(formed)

    def _worker_loop(self) -> None:
        try:
            while True:
                formed = self._batch_q.get()
                if formed is None:
                    return
                with self._cond:
                    fast_reject = self._closing and not self._drain
                if fast_reject:
                    self._reject_requests(formed.requests, self._shutdown_reason)
                    continue
                try:
                    self._serve_batch(formed)
                except Exception as exc:
                    # _serve_batch settles its own failures; this extra
                    # barrier catches a defect in the reliability layer
                    # itself so the batch's clients are not stranded.
                    self._reject_requests(formed.requests, error_reason(exc))
        except BaseException as exc:  # crash barrier: never strand clients
            self._fatal("worker-loop", exc)

    def _fatal(self, origin: str, exc: BaseException) -> None:
        """A pipeline thread died: settle everything it was holding."""
        with self._cond:
            self._accepting = False
            self._closing = True
            with self._stats_lock:
                self._crashes.append(f"{origin}: {type(exc).__name__}: {exc}")
            pending = self._batcher.drain_pending()
            self._cond.notify_all()
        self._reject_requests(pending, error_reason(exc))
        while True:
            try:
                fb = self._batch_q.get_nowait()
            except queue.Empty:
                break
            if fb is not None:
                self._reject_requests(fb.requests, error_reason(exc))
        for _ in range(self.config.workers):
            self._batch_q.put(None)

    # -- batch service (retry / fallback / bisection) ----------------

    def _serve_batch(self, formed: FormedBatch) -> None:
        dispatch_us = self._now_us()
        self._run_slice(formed, formed.requests, dispatch_us)

    def _sub_batch(self, formed: FormedBatch, requests) -> FormedBatch:
        if requests is formed.requests:
            return formed
        return FormedBatch(
            batch_id=formed.batch_id,
            formed_us=formed.formed_us,
            trigger=formed.trigger,
            requests=list(requests),
            shed=[],
        )

    def _plan_with_retry(
        self, sub: FormedBatch, budget: Optional[DeadlineBudget] = None
    ):
        policy = self.config.reliability.retry
        for attempt in range(1, policy.max_attempts + 1):
            try:
                return self._planner.plan(sub, budget=budget)
            except BudgetExhausted:
                # The budget itself refused the work -- retrying cannot
                # buy time back, so fail fast to the caller.
                raise
            except Exception as exc:
                if attempt >= policy.max_attempts:
                    raise
                delay_ms = policy.delay_ms(attempt, token="planner")
                if budget is not None and not budget.affords(delay_ms * 1e3):
                    # The retry backoff alone outlives the deadline:
                    # charge the failure to the budget instead of
                    # sleeping past it.
                    raise BudgetExhausted(
                        f"deadline budget cannot afford the {delay_ms:.0f}ms "
                        f"planner retry backoff"
                    ) from exc
                with self._stats_lock:
                    self._planner_retries += 1
                if delay_ms > 0:
                    self._sleep(delay_ms / 1e3)
        raise AssertionError("unreachable")

    def _run_slice(
        self,
        formed: FormedBatch,
        requests: Sequence[ServeRequest],
        dispatch_us: float,
    ) -> None:
        """Serve a slice of a formed batch, bisecting on failure.

        On success every request in the slice resolves Completed (or
        TimedOut); on terminal failure the slice is split in half and
        re-executed so a single poison request cannot take its healthy
        batchmates down with it.

        The slice's tightest deadline becomes a
        :class:`~repro.serve.budget.DeadlineBudget` that the planner
        retries and the executor's retry/fallback machinery charge
        against; a slice abandoned by the budget settles as the typed
        ``budget_exhausted`` rejection.  Bisection still applies --
        each half rebuilds its own budget, so batchmates with looser
        deadlines are not dragged down by the most urgent member.
        """
        budget = DeadlineBudget.for_requests(requests, clock_us=self._now_us)
        try:
            sub = self._sub_batch(formed, requests)
            planned = self._plan_with_retry(sub, budget)
            values: Optional[list] = None
            if all(r.operands is not None for r in requests):
                operands = [r.operands for r in requests]
                prec = None
                if sub.precision is not None:
                    from repro.core.precision import (
                        Precision,
                        quantize_operands,
                        quantize_outputs,
                    )

                    prec = Precision.coerce(sub.precision)
                    if prec.is_reduced:
                        # Stage on the storage grid the batch was
                        # planned at (mixed-precision for real).
                        operands = quantize_operands(operands, prec)
                values, _engine_used = self._executor.execute(
                    planned.report.schedule,
                    sub.to_gemm_batch(),
                    operands,
                    budget=budget,
                )
                if prec is not None and prec.is_reduced:
                    values = quantize_outputs(values, prec)
        except Exception as exc:
            # EngineUnavailable is not data-dependent: splitting the
            # batch cannot help, so reject the slice outright.
            if (
                self.config.reliability.bisect
                and len(requests) > 1
                and not isinstance(exc, EngineUnavailable)
            ):
                with self._stats_lock:
                    self._bisections += 1
                mid = len(requests) // 2
                self._run_slice(formed, requests[:mid], dispatch_us)
                self._run_slice(formed, requests[mid:], dispatch_us)
                return
            # Terminal failure: settle the tickets AND keep feeding the
            # admission EWMA so the deadline-feasibility estimate does
            # not go stale for the duration of an incident.  A budget
            # abandonment is not an engine error -- it settles under
            # the plain typed ``budget_exhausted`` reason.
            if isinstance(exc, BudgetExhausted):
                with self._stats_lock:
                    self._budget_exhausted += len(requests)
                reason = REASON_BUDGET_EXHAUSTED
            else:
                reason = error_reason(exc)
            self._reject_requests(requests, reason, observe=True)
            return
        finish_us = self._now_us()
        for i, r in enumerate(requests):
            latency_us = finish_us - r.arrival_us
            if r.timeout_us is not None and latency_us > r.timeout_us:
                self._resolve(
                    TimedOut(
                        request_id=r.request_id,
                        finish_us=finish_us,
                        latency_us=latency_us,
                        batch_id=formed.batch_id,
                    )
                )
            else:
                self._resolve(
                    Completed(
                        request_id=r.request_id,
                        finish_us=finish_us,
                        latency_us=latency_us,
                        batch_id=formed.batch_id,
                        batch_size=formed.occupancy,
                        queue_us=dispatch_us - r.arrival_us,
                        service_us=finish_us - dispatch_us,
                        deadline_met=r.deadline_us is None
                        or finish_us <= r.deadline_us,
                        value=None if values is None else values[i],
                    )
                )
            self._admission.observe_service(latency_us)

    # -- results -----------------------------------------------------

    def _reject_requests(
        self,
        requests: Sequence[ServeRequest],
        reason: str,
        *,
        observe: bool = False,
    ) -> None:
        if not requests:
            return
        finish_us = self._now_us()
        for r in requests:
            latency_us = max(0.0, finish_us - r.arrival_us)
            self._resolve(
                Rejected(
                    request_id=r.request_id,
                    finish_us=finish_us,
                    latency_us=latency_us,
                    reason=reason,
                )
            )
            if observe:
                self._admission.observe_service(latency_us)

    def _resolve(self, result: ServeResult) -> None:
        with self._stats_lock:
            ticket = self._tickets.pop(result.request_id, None)
            if ticket is None:
                return  # already settled (a barrier raced the pipeline)
            self._results.append(result)
            self._last_finish_us = max(self._last_finish_us, result.finish_us)
        ticket._resolve(result)

    def _sweep_stranded(self) -> None:
        """Settle any ticket still unresolved (the last crash barrier)."""
        with self._stats_lock:
            stranded = list(self._tickets)
        if not stranded:
            return
        now_us = self._now_us()
        for rid in stranded:
            self._resolve(
                Rejected(
                    request_id=rid,
                    finish_us=now_us,
                    latency_us=0.0,
                    reason=REASON_STRANDED,
                )
            )

    # -- introspection ------------------------------------------------

    def measurements(self) -> dict:
        """Raw per-incarnation measurements, for supervised aggregation.

        The cluster supervisor replaces a dead shard's server with a
        fresh one; the frontend keeps this export from each retired
        incarnation so :meth:`ClusterFrontend.summary` can merge the
        full history instead of losing everything the dead server did.
        """
        with self._stats_lock:
            return {
                "results": list(self._results),
                "occupancies": list(self._occupancies),
                "formed_batches": list(self._formed_batches),
                "first_arrival_us": self._first_arrival_us,
                "last_finish_us": self._last_finish_us,
                "cache": self.cache.stats_snapshot(),
            }

    def _reliability_snapshot(self) -> dict:
        snap = self._executor.snapshot()
        with self._stats_lock:
            snap["planner_retries"] = self._planner_retries
            snap["retries"] += self._planner_retries
            snap["bisections"] = self._bisections
            snap["budget_exhausted"] = self._budget_exhausted
            snap["crashes"] = list(self._crashes)
        snap["faults_injected"] = (
            self._injector.injected_count if self._injector is not None else 0
        )
        return snap

    @property
    def accepting(self) -> bool:
        """Whether :meth:`submit` currently admits new requests."""
        with self._cond:
            return self._accepting

    def queue_depth(self) -> int:
        """Pending + formed-but-undispatched work (the stealing signal).

        A cheap subset of :meth:`health` -- the cluster router polls
        this per submission, so it must not walk breaker snapshots.
        """
        with self._cond:
            pending = self._batcher.pending_count
        return pending + self._batch_q.qsize()

    def health(self) -> dict:
        """Liveness and fault-tolerance state, for probes and dashboards.

        ``ok`` is True while the server accepts traffic and no pipeline
        thread has crashed; ``breakers`` maps each engine in the
        fallback chain to its circuit state (full snapshots live under
        ``breaker_detail``); the counters mirror what :meth:`summary`
        later emits as telemetry.  When the ``procpool`` engine is in
        the fallback chain, ``procpool`` reports the worker-process
        pool's liveness (pool generations, restart count, live arena
        segments) from :func:`repro.kernels.procpool.procpool_status`.
        """
        with self._cond:
            accepting = self._accepting
            pending = self._batcher.pending_count
        with self._stats_lock:
            outstanding = len(self._tickets)
        snap = self._reliability_snapshot()
        health = {
            "ok": accepting and not snap["crashes"],
            "accepting": accepting,
            "queue_depth": pending + self._batch_q.qsize(),
            "outstanding": outstanding,
            "engine": snap["engine"],
            "chain": snap["chain"],
            "breakers": {
                name: detail["state"] for name, detail in snap["breakers"].items()
            },
            "breaker_detail": snap["breakers"],
            "retries": snap["retries"],
            "fallbacks": snap["fallbacks"],
            "bisections": snap["bisections"],
            "budget_exhausted": snap["budget_exhausted"],
            "budget_abandoned": snap["budget_abandoned"],
            "engine_used": snap["engine_used"],
            "faults_injected": snap["faults_injected"],
            "crashes": snap["crashes"],
        }
        if "procpool" in snap["chain"]:
            from repro.kernels.procpool import procpool_status

            health["procpool"] = procpool_status()
        return health

    def summary(self) -> ServeReport:
        """Compile everything served so far into a :class:`ServeReport`.

        Also emits the aggregate serve metrics into the current tracer
        (from this thread -- see the module docstring).
        """
        with self._stats_lock:
            results = list(self._results)
            occupancies = list(self._occupancies)
            formed = list(self._formed_batches)
            first = self._first_arrival_us
            last = self._last_finish_us
        makespan_us = max(0.0, last - first) if first is not None else 0.0
        reliability = self._reliability_snapshot()
        report = compile_report(
            results=results,
            occupancies=occupancies,
            makespan_us=makespan_us,
            cache=self.cache.stats_snapshot(),
            max_batch_size=self.config.batcher.max_batch_size,
            time_base="wall",
            formed_batches=formed,
            reliability=reliability,
        )
        tracer = get_tracer()
        if tracer.enabled:
            for occ in occupancies:
                tracer.histogram("serve.batch_occupancy", occ)
            for r in results:
                if r.ok:
                    tracer.histogram("serve.latency_us", r.latency_us)
            tracer.counter("serve.batches_formed", len(occupancies))
            n_rejected = report.n_rejected_queue + report.n_rejected_other
            tracer.counter("serve.requests_accepted", report.n_requests - n_rejected)
            tracer.counter("serve.requests_completed", report.n_completed)
            tracer.counter("serve.requests_rejected", n_rejected)
            tracer.counter("serve.requests_shed", report.n_shed_deadline)
            tracer.counter("serve.requests_timeout", report.n_timed_out)
            tracer.counter("serve.requests_failed", report.n_rejected_error)
            tracer.counter("serve.retries", reliability["retries"])
            tracer.counter("serve.fallbacks", reliability["fallbacks"])
            tracer.counter("serve.bisections", reliability["bisections"])
            tracer.counter("budget.exhausted", reliability["budget_exhausted"])
            tracer.counter("faults.injected", reliability["faults_injected"])
            for name, detail in reliability["breakers"].items():
                tracer.gauge(
                    f"serve.breaker_state.{name}",
                    BreakerState(detail["state"]).code,
                )
        return report
