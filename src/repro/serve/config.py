"""Serving-pipeline configuration shared by the server and the driver."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.core.framework import HeuristicLike
from repro.kernels import ENGINES
from repro.reliability import FaultPlan, RetryPolicy
from repro.serve.admission import AdmissionConfig
from repro.serve.batcher import BatcherConfig


@dataclass(frozen=True)
class ReliabilityConfig:
    """Fault-tolerance policy for the serving pipeline.

    ``retry`` drives both planner and engine retries (capped
    exponential backoff, deterministic jitter); ``fallback`` enables
    the engine degradation chain (``parallel`` -> ``grouped`` ->
    ``reference``); the breaker knobs size each engine's
    :class:`~repro.reliability.CircuitBreaker`; ``bisect`` enables
    poison-batch isolation (a batch that fails after retries and
    fallback is split and re-executed so healthy requests still
    complete); ``fault_plan`` installs a seeded
    :class:`~repro.reliability.FaultPlan` for chaos testing --
    ``None`` (the default) injects nothing and adds no overhead.
    """

    retry: RetryPolicy = field(default_factory=RetryPolicy)
    fallback: bool = True
    breaker_failure_threshold: int = 5
    breaker_cooldown_s: float = 1.0
    bisect: bool = True
    fault_plan: Optional[FaultPlan] = None

    def __post_init__(self) -> None:
        if self.breaker_failure_threshold < 1:
            raise ValueError(
                "breaker_failure_threshold must be >= 1, "
                f"got {self.breaker_failure_threshold}"
            )
        if self.breaker_cooldown_s < 0:
            raise ValueError(
                f"breaker_cooldown_s must be >= 0, got {self.breaker_cooldown_s}"
            )


@dataclass(frozen=True)
class ServeConfig:
    """Everything the serving pipeline needs to know.

    ``heuristic`` is passed through to planning (``None`` keeps the
    framework default, the exhaustive ``best`` trial; latency-sensitive
    deployments usually pin ``threshold`` or ``binary`` and let the
    plan cache amortize).  ``miss_overhead_us`` / ``hit_overhead_us``
    model the online planning cost charged per batch in virtual-time
    replay (a miss runs the full tiling+batching trial; a hit is one
    cache lookup).  ``engine`` selects the numerical executor used
    when a formed batch carries operands (see
    :func:`repro.kernels.get_engine`); the default ``grouped`` engine
    is bit-identical to the reference walk and keeps the worker's
    execute path off the per-tile interpreter overhead.

    ``workers`` is the number of *serve pipeline* threads (planning +
    dispatch); ``engine_workers`` independently sizes the ``parallel``
    execution engine's shard pool per executed batch (``None`` lets
    the engine pick a host-sized default) and is only accepted when
    ``engine="parallel"`` -- the two knobs compose, since an engine
    pool is shared process-wide across all serve workers.

    ``reliability`` holds the fault-tolerance policy (retries, engine
    fallback, circuit breakers, poison-batch bisection, and the
    optional chaos fault plan); see :class:`ReliabilityConfig` and
    ``docs/reliability.md``.
    """

    workers: int = 2
    batcher: BatcherConfig = field(default_factory=BatcherConfig)
    admission: AdmissionConfig = field(default_factory=AdmissionConfig)
    heuristic: HeuristicLike = None
    miss_overhead_us: float = 200.0
    hit_overhead_us: float = 5.0
    engine: str = "grouped"
    engine_workers: int | None = None
    reliability: ReliabilityConfig = field(default_factory=ReliabilityConfig)

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")
        if self.miss_overhead_us < 0 or self.hit_overhead_us < 0:
            raise ValueError("planning overheads must be >= 0")
        if self.engine not in ENGINES:
            raise ValueError(
                f"engine must be one of {ENGINES}, got {self.engine!r}"
            )
        if self.engine_workers is not None:
            if self.engine_workers < 1:
                raise ValueError(
                    f"engine_workers must be >= 1, got {self.engine_workers}"
                )
            if self.engine != "parallel":
                raise ValueError(
                    "engine_workers= only applies to engine='parallel', "
                    f"got engine={self.engine!r}"
                )
