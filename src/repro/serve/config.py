"""Serving-pipeline configuration shared by the server and the driver."""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Optional

from repro.core.framework import HeuristicLike
from repro.kernels import ENGINES, WORKER_ENGINES, ExecutionPolicy
from repro.reliability import FaultPlan, RetryPolicy
from repro.serve.admission import AdmissionConfig
from repro.serve.batcher import BatcherConfig


@dataclass(frozen=True)
class ReliabilityConfig:
    """Fault-tolerance policy for the serving pipeline.

    ``retry`` drives both planner and engine retries (capped
    exponential backoff, deterministic jitter); ``fallback`` enables
    the engine degradation chain (``parallel`` -> ``grouped`` ->
    ``reference``); the breaker knobs size each engine's
    :class:`~repro.reliability.CircuitBreaker`; ``bisect`` enables
    poison-batch isolation (a batch that fails after retries and
    fallback is split and re-executed so healthy requests still
    complete); ``fault_plan`` installs a seeded
    :class:`~repro.reliability.FaultPlan` for chaos testing --
    ``None`` (the default) injects nothing and adds no overhead.
    """

    retry: RetryPolicy = field(default_factory=RetryPolicy)
    fallback: bool = True
    breaker_failure_threshold: int = 5
    breaker_cooldown_s: float = 1.0
    bisect: bool = True
    fault_plan: Optional[FaultPlan] = None

    def __post_init__(self) -> None:
        if self.breaker_failure_threshold < 1:
            raise ValueError(
                "breaker_failure_threshold must be >= 1, "
                f"got {self.breaker_failure_threshold}"
            )
        if self.breaker_cooldown_s < 0:
            raise ValueError(
                f"breaker_cooldown_s must be >= 0, got {self.breaker_cooldown_s}"
            )


@dataclass(frozen=True)
class ServeConfig:
    """Everything the serving pipeline needs to know.

    ``heuristic`` is passed through to planning (``None`` keeps the
    framework default, the exhaustive ``best`` trial; latency-sensitive
    deployments usually pin ``threshold`` or ``binary`` and let the
    plan cache amortize).  ``miss_overhead_us`` / ``hit_overhead_us``
    model the online planning cost charged per batch in virtual-time
    replay (a miss runs the full tiling+batching trial; a hit is one
    cache lookup); ``compile_overhead_us`` is additionally charged the
    first time each distinct plan is dispatched under a ``compiled``
    policy (the one-off artifact compilation -- warm dispatches charge
    nothing extra).

    ``policy`` -- an :class:`~repro.kernels.ExecutionPolicy` -- names
    the numerical executor used when a formed batch carries operands
    and, for the ``parallel`` engine, its shard-pool size.  Its
    reliability knobs (``fallback`` / ``retry`` / ``injector``) must
    stay unset here: the serving pipeline's fault-tolerance envelope
    comes from ``reliability`` (one source of truth).  The pre-policy
    ``engine`` / ``engine_workers`` fields still work behind a
    ``DeprecationWarning`` and must not be mixed with ``policy``; use
    :meth:`execution_policy` to read the effective policy.

    ``workers`` is the number of *serve pipeline* threads (planning +
    dispatch); the policy's worker count independently sizes the
    ``parallel`` execution engine's shard pool per executed batch --
    the two knobs compose, since an engine pool is shared process-wide
    across all serve workers.

    ``reliability`` holds the fault-tolerance policy (retries, engine
    fallback, circuit breakers, poison-batch bisection, and the
    optional chaos fault plan); see :class:`ReliabilityConfig` and
    ``docs/reliability.md``.
    """

    workers: int = 2
    batcher: BatcherConfig = field(default_factory=BatcherConfig)
    admission: AdmissionConfig = field(default_factory=AdmissionConfig)
    heuristic: HeuristicLike = None
    miss_overhead_us: float = 200.0
    hit_overhead_us: float = 5.0
    compile_overhead_us: float = 50.0
    policy: Optional[ExecutionPolicy] = None
    engine: Optional[str] = None
    engine_workers: int | None = None
    reliability: ReliabilityConfig = field(default_factory=ReliabilityConfig)

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")
        if self.miss_overhead_us < 0 or self.hit_overhead_us < 0:
            raise ValueError("planning overheads must be >= 0")
        if self.compile_overhead_us < 0:
            raise ValueError(
                f"compile_overhead_us must be >= 0, got {self.compile_overhead_us}"
            )
        legacy = self.engine is not None or self.engine_workers is not None
        if self.policy is not None:
            if legacy:
                raise ValueError(
                    "pass either policy= or the legacy engine/engine_workers "
                    "fields, not both"
                )
            if self.policy.reliable:
                raise ValueError(
                    "ServeConfig policy must not carry fallback/retry/"
                    "injector; the serving reliability envelope comes from "
                    "ReliabilityConfig"
                )
        if self.engine is not None and self.engine not in ENGINES:
            raise ValueError(
                f"engine must be one of {ENGINES}, got {self.engine!r}"
            )
        if self.engine_workers is not None:
            if self.engine_workers < 1:
                raise ValueError(
                    f"engine_workers must be >= 1, got {self.engine_workers}"
                )
            if self.engine not in WORKER_ENGINES:
                raise ValueError(
                    "engine_workers= only applies to the worker-pool "
                    f"engines {WORKER_ENGINES}, got engine={self.engine!r}"
                )
        if legacy:
            warnings.warn(
                "ServeConfig engine/engine_workers are deprecated; pass "
                "policy=repro.ExecutionPolicy(...) instead",
                DeprecationWarning,
                stacklevel=3,
            )

    def execution_policy(self) -> ExecutionPolicy:
        """The effective :class:`~repro.kernels.ExecutionPolicy`.

        ``policy`` when set; otherwise the deprecated
        ``engine`` / ``engine_workers`` fields coerced (defaulting to
        the ``grouped`` engine).  Reliability knobs are never carried
        here -- the server layers them on from ``reliability``.
        """
        if self.policy is not None:
            return self.policy
        return ExecutionPolicy(
            engine=self.engine if self.engine is not None else "grouped",
            workers=self.engine_workers,
        )
