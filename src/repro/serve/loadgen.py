"""Load generation: synthetic traffic for the serving layer.

Two generator styles, matching the standard serving-benchmark split:

* **open-loop** (:func:`poisson_trace`) -- arrivals follow a Poisson
  process at a fixed offered rate, independent of how fast the server
  drains them.  This is the honest way to measure latency under load
  (closed-loop clients self-throttle and hide queueing collapse).
  The result is a plain list of :class:`TraceRequest`, replayable
  deterministically by :func:`repro.serve.driver.replay_trace` or in
  wall time against a live :class:`~repro.serve.server.GemmServer`.
* **closed-loop** (:func:`run_closed_loop`) -- N client threads, each
  submitting its next request only after the previous one resolves
  (plus optional think time), against a live server.  Measures
  capacity rather than tail latency.

Traces serialize to JSON (:func:`save_trace` / :func:`load_trace`) so
a measured trace can be replayed bit-for-bit later.  All randomness
flows from a single seed; the same seed always yields the same trace.
"""

from __future__ import annotations

import json
import threading
from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Sequence

import numpy as np

from repro.cluster.hashing import derive_seed
from repro.core.problem import Gemm

#: Default shape mix: GoogLeNet/SqueezeNet-flavoured inference GEMMs --
#: small-to-medium problems that only pay off when fused (Section 2).
DEFAULT_SHAPE_POOL: tuple[tuple[int, int, int], ...] = (
    (64, 784, 192),
    (96, 784, 192),
    (16, 784, 192),
    (128, 196, 480),
    (32, 196, 480),
    (64, 64, 64),
)


@dataclass(frozen=True)
class TraceRequest:
    """One arrival in a traffic trace (times absolute, microseconds)."""

    arrival_us: float
    gemm: Gemm
    deadline_us: Optional[float] = None
    timeout_us: Optional[float] = None
    priority: int = 0
    precision: Optional[str] = None  # storage precision ("fp32"/"fp16"/"bf16")

    def to_dict(self) -> dict:
        """Return the request as a JSON-compatible dict."""
        d: dict = {
            "arrival_us": self.arrival_us,
            "m": self.gemm.m,
            "n": self.gemm.n,
            "k": self.gemm.k,
        }
        if self.deadline_us is not None:
            d["deadline_us"] = self.deadline_us
        if self.timeout_us is not None:
            d["timeout_us"] = self.timeout_us
        if self.priority:
            d["priority"] = self.priority
        if self.precision is not None:
            d["precision"] = self.precision
        return d

    @classmethod
    def from_dict(cls, d: dict) -> "TraceRequest":
        return cls(
            arrival_us=float(d["arrival_us"]),
            gemm=Gemm(int(d["m"]), int(d["n"]), int(d["k"])),
            deadline_us=float(d["deadline_us"]) if "deadline_us" in d else None,
            timeout_us=float(d["timeout_us"]) if "timeout_us" in d else None,
            priority=int(d.get("priority", 0)),
            precision=d.get("precision"),
        )


def poisson_trace(
    rate_rps: float,
    duration_s: float | None = 0.25,
    *,
    n_requests: int | None = None,
    shapes: Sequence[tuple[int, int, int]] = DEFAULT_SHAPE_POOL,
    seed: int = 0,
    deadline_us: float | None = None,
    timeout_us: float | None = None,
    priorities: Sequence[int] = (0,),
    shard_id: int | None = None,
) -> list[TraceRequest]:
    """An open-loop Poisson arrival trace.

    Exponential inter-arrivals at ``rate_rps`` until ``duration_s`` of
    virtual time has passed (and/or ``n_requests`` arrivals, whichever
    comes first; pass ``duration_s=None`` to cap by count alone).
    Shapes and priorities are drawn uniformly from their pools;
    ``deadline_us`` / ``timeout_us`` are per-request constraints
    relative to each arrival.  Deterministic in ``seed``.

    ``shard_id`` derives an independent per-shard stream from the same
    base seed (:func:`repro.cluster.hashing.derive_seed` -- SplitMix64
    spreading, so nearby shard ids give uncorrelated streams).  Use it
    to generate per-shard offered load for cluster runs without
    hand-picking N seeds; ``None`` keeps the base seed untouched.
    """
    if rate_rps <= 0:
        raise ValueError(f"rate_rps must be positive, got {rate_rps}")
    if duration_s is None and n_requests is None:
        raise ValueError("pass duration_s and/or n_requests to bound the trace")
    if not shapes:
        raise ValueError("shapes pool is empty")
    if shard_id is not None:
        seed = derive_seed(seed, shard_id)
    rng = np.random.default_rng(seed)
    mean_gap_us = 1e6 / rate_rps
    horizon_us = None if duration_s is None else duration_s * 1e6
    trace: list[TraceRequest] = []
    now_us = 0.0
    while True:
        now_us += float(rng.exponential(mean_gap_us))
        if horizon_us is not None and now_us > horizon_us:
            break
        if n_requests is not None and len(trace) >= n_requests:
            break
        m, n, k = shapes[int(rng.integers(len(shapes)))]
        priority = int(priorities[int(rng.integers(len(priorities)))])
        trace.append(
            TraceRequest(
                arrival_us=now_us,
                gemm=Gemm(m, n, k),
                deadline_us=None if deadline_us is None else now_us + deadline_us,
                timeout_us=timeout_us,
                priority=priority,
            )
        )
    return trace


def save_trace(path: str | Path, trace: Sequence[TraceRequest]) -> None:
    """Write a trace as JSON (replayable with :func:`load_trace`)."""
    payload = {"version": 1, "requests": [r.to_dict() for r in trace]}
    Path(path).write_text(json.dumps(payload, indent=1) + "\n")


def load_trace(path: str | Path) -> list[TraceRequest]:
    """Read a trace written by :func:`save_trace`."""
    payload = json.loads(Path(path).read_text())
    if not isinstance(payload, dict) or "requests" not in payload:
        raise ValueError(f"{path}: not a serve trace file")
    return [TraceRequest.from_dict(d) for d in payload["requests"]]


def run_closed_loop(
    server,
    *,
    clients: int = 4,
    requests_per_client: int = 8,
    shapes: Sequence[tuple[int, int, int]] = DEFAULT_SHAPE_POOL,
    seed: int = 0,
    think_time_s: float = 0.0,
    deadline_us: float | None = None,
    timeout_us: float | None = None,
    result_timeout_s: float = 30.0,
    shard_id: int | None = None,
) -> list:
    """Drive a live :class:`~repro.serve.server.GemmServer` closed-loop.

    Each client thread submits, blocks on the result, optionally
    thinks, and repeats.  Returns every :class:`ServeResult` (ordered
    by client, then sequence).  Shape choices are deterministic per
    ``seed``; timing of course is not.  ``shard_id`` derives an
    independent per-shard seed stream exactly as in
    :func:`poisson_trace`.
    """
    if clients < 1 or requests_per_client < 1:
        raise ValueError("clients and requests_per_client must be >= 1")
    if shard_id is not None:
        seed = derive_seed(seed, shard_id)
    results: list[list] = [[] for _ in range(clients)]
    errors: list[BaseException] = []

    def client(index: int) -> None:
        rng = np.random.default_rng(seed + index)
        try:
            for _ in range(requests_per_client):
                m, n, k = shapes[int(rng.integers(len(shapes)))]
                ticket = server.submit(
                    Gemm(m, n, k), deadline_us=deadline_us, timeout_us=timeout_us
                )
                results[index].append(ticket.result(timeout=result_timeout_s))
                if think_time_s > 0:
                    import time

                    time.sleep(think_time_s)
        except BaseException as exc:  # surfaced to the caller below
            errors.append(exc)

    threads = [
        threading.Thread(target=client, args=(i,), name=f"loadgen-client-{i}")
        for i in range(clients)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    if errors:
        raise errors[0]
    return [r for per_client in results for r in per_client]
