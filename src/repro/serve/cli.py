"""``repro-serve``: serve a GEMM traffic trace and report latency.

Usage::

    repro-serve                            # synthetic Poisson trace, defaults
    repro-serve --rate 4000 --duration 0.5 --deadline-us 20000 --seed 7
    repro-serve --shapes 64x784x192 --rate 3000 --warm
    repro-serve --save-trace /tmp/trace.json
    repro-serve --trace /tmp/trace.json --workers 4
    repro-serve --live --time-scale 0.1    # wall-clock run through GemmServer

    # chaos: seeded fault injection against the live server
    repro-serve --live --operands --inject engine_error:engine=grouped,at=1-6 \
        --fault-seed 7 --json

    # sharded cluster tier: deterministic replay with a mid-run shard
    # kill, Bloom cache admission, and work stealing
    repro-serve --shards 4 --bloom --steal-threshold 8 --kill-shard 1@150000
    repro-serve --shards 4 --live --time-scale 0.1 --json

    # supervised recovery: respawn killed shards warm and fail
    # their settled tickets over along the ring
    repro-serve --shards 4 --kill-shard 1@150000 --supervise \
        --max-restarts 3 --restart-backoff-us 20000 --failover-limit 1

By default the trace is replayed **deterministically in virtual time**
(:func:`repro.serve.driver.replay_trace`): arrival times come from the
trace, service times from the device model, so the same seed and
configuration always print the same report.  ``--live`` instead paces
the trace in wall time through the threaded
:class:`~repro.serve.server.GemmServer` (real queues, real workers,
nondeterministic latencies).

The report covers p50/p95/p99 end-to-end and queueing latency,
throughput, batch occupancy, shed/timeout counts, and the plan-cache
hit rate; ``--warm`` pre-plans the trace's batch mixes
(:meth:`PlanCache.warm`) so serving starts hot.
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from repro.core.framework import CoordinatedFramework
from repro.core.options import Heuristic
from repro.core.plancache import CacheStats, PlanCache
from repro.kernels import ENGINES, WORKER_ENGINES
from repro.gpu.specs import get_device
from repro.telemetry import NULL_TRACER, Tracer, set_tracer, write_chrome_trace


def build_parser() -> argparse.ArgumentParser:
    """Build the ``repro-serve`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-serve",
        description="Serve a batched-GEMM traffic trace and report latency/throughput.",
    )
    traffic = parser.add_argument_group("traffic")
    traffic.add_argument(
        "--trace", default="", metavar="FILE", help="replay a saved trace file"
    )
    traffic.add_argument(
        "--rate", type=float, default=2000.0, help="Poisson arrival rate (req/s)"
    )
    traffic.add_argument(
        "--duration", type=float, default=0.25, help="trace duration (seconds)"
    )
    traffic.add_argument(
        "--requests", type=int, default=0, help="cap the trace at N requests (0 = no cap)"
    )
    traffic.add_argument("--seed", type=int, default=0, help="trace RNG seed")
    traffic.add_argument(
        "--shapes",
        default="",
        help="comma-separated MxNxK pool (default: DNN-inference mix)",
    )
    traffic.add_argument(
        "--deadline-us",
        type=float,
        default=0.0,
        help="per-request deadline relative to arrival (0 = none)",
    )
    traffic.add_argument(
        "--timeout-us",
        type=float,
        default=0.0,
        help="per-request timeout relative to arrival (0 = none)",
    )
    traffic.add_argument(
        "--save-trace", default="", metavar="FILE", help="write the trace as JSON"
    )
    pipeline = parser.add_argument_group("pipeline")
    pipeline.add_argument("--device", default="v100", help="device name or alias")
    pipeline.add_argument(
        "--precision",
        choices=("fp32", "fp16", "bf16"),
        default=None,
        help="storage precision every request plans and executes at "
        "(default: the framework default, REPRO_DTYPE or fp32)",
    )
    pipeline.add_argument(
        "--backend",
        default=None,
        help="tiling backend (cuda:<device> / systolic:<RxC> / sram:<N>k; "
        "default: CUDA on --device)",
    )
    pipeline.add_argument("--workers", type=int, default=2, help="worker pool size")
    pipeline.add_argument(
        "--max-batch", type=int, default=16, help="dynamic batcher size trigger"
    )
    pipeline.add_argument(
        "--max-wait-us",
        type=float,
        default=2000.0,
        help="dynamic batcher wait-window trigger",
    )
    pipeline.add_argument(
        "--queue-capacity", type=int, default=64, help="admission queue bound"
    )
    pipeline.add_argument(
        "--heuristic",
        default="threshold",
        help="batching heuristic (threshold/binary/greedy-packing/balanced/best/best-extended)",
    )
    pipeline.add_argument(
        "--cache-capacity", type=int, default=256, help="plan cache capacity"
    )
    pipeline.add_argument(
        "--engine",
        choices=ENGINES,
        default="grouped",
        help="numerical execution engine for operand-carrying batches "
        "(compiled = precompiled-plan interpreter, fastest warm path; "
        "procpool = multi-core worker processes over shared-memory "
        "arenas)",
    )
    pipeline.add_argument(
        "--engine-workers",
        type=int,
        default=0,
        metavar="N",
        help="worker-pool shard size (0 = host default; requires a "
        f"worker-pool engine: {', '.join(WORKER_ENGINES)})",
    )
    pipeline.add_argument(
        "--warm",
        action="store_true",
        help="pre-plan the trace's batch mixes before serving (warm-start)",
    )
    reliability = parser.add_argument_group("reliability")
    reliability.add_argument(
        "--inject",
        action="append",
        default=[],
        metavar="SPEC",
        help="inject a seeded fault: <site>_<error|slow>[:key=val,...] with "
        "site in {engine, planner}, keys every=N, at=A-B+C, rate=P, ms=X, "
        "engine=NAME, exc=ExcName (repeatable; e.g. engine_error:every=7)",
    )
    reliability.add_argument(
        "--fault-seed", type=int, default=0, help="fault-injection RNG seed"
    )
    reliability.add_argument(
        "--max-retries",
        type=int,
        default=3,
        metavar="N",
        help="retry attempts per planner call / per engine (default 3)",
    )
    reliability.add_argument(
        "--no-fallback",
        action="store_true",
        help="disable the engine fallback chain (fail instead of degrading)",
    )
    reliability.add_argument(
        "--no-bisect",
        action="store_true",
        help="disable poison-batch bisection (reject whole failed batches)",
    )
    reliability.add_argument(
        "--breaker-threshold",
        type=int,
        default=5,
        metavar="N",
        help="consecutive failures before an engine's circuit opens",
    )
    reliability.add_argument(
        "--breaker-cooldown-s",
        type=float,
        default=1.0,
        metavar="S",
        help="seconds an open circuit waits before a half-open probe",
    )
    cluster = parser.add_argument_group("cluster")
    cluster.add_argument(
        "--shards",
        type=int,
        default=0,
        metavar="N",
        help="serve through a sharded cluster tier of N shards "
        "(0 = single server, the default)",
    )
    cluster.add_argument(
        "--vnodes",
        type=int,
        default=64,
        metavar="N",
        help="virtual nodes per shard on the consistent-hash ring",
    )
    cluster.add_argument(
        "--steal-threshold",
        type=int,
        default=8,
        metavar="N",
        help="queue-depth skew that triggers cross-shard work stealing "
        "(0 = stealing disabled)",
    )
    cluster.add_argument(
        "--global-queue-capacity",
        type=int,
        default=0,
        metavar="N",
        help="cluster-wide backpressure bound on total queued work "
        "(0 = unbounded)",
    )
    cluster.add_argument(
        "--bloom",
        action="store_true",
        help="enable second-hit Bloom plan-cache admission on every shard",
    )
    cluster.add_argument(
        "--bloom-capacity",
        type=int,
        default=1024,
        metavar="N",
        help="Bloom filter design capacity per generation",
    )
    cluster.add_argument(
        "--kill-shard",
        action="append",
        default=[],
        metavar="SHARD@TIME_US",
        help="kill a shard mid-run (e.g. 1@150000; repeatable); its held "
        "requests settle as error:ShardKilled and traffic remaps",
    )
    cluster.add_argument(
        "--supervise",
        action="store_true",
        help="supervise the shards: respawn killed shards warm from their "
        "predecessor's plan-cache manifest and transparently resubmit "
        "the tickets a kill settled",
    )
    cluster.add_argument(
        "--max-restarts",
        type=int,
        default=3,
        metavar="N",
        help="restarts allowed per shard per restart window before "
        "permanent ejection (requires --supervise)",
    )
    cluster.add_argument(
        "--restart-backoff-us",
        type=float,
        default=20_000.0,
        metavar="US",
        help="base delay before a killed shard respawns; doubles per "
        "respawn, capped (requires --supervise)",
    )
    cluster.add_argument(
        "--failover-limit",
        type=int,
        default=1,
        metavar="N",
        help="max transparent resubmissions per ticket settled by a "
        "shard kill; 0 settles them failover_exhausted (requires "
        "--supervise)",
    )
    output = parser.add_argument_group("output")
    output.add_argument(
        "--live",
        action="store_true",
        help="run in wall time through the threaded GemmServer (nondeterministic)",
    )
    output.add_argument(
        "--operands",
        action="store_true",
        help="--live only: submit random operands so batches execute "
        "numerically (exercises the engine + fallback chain)",
    )
    output.add_argument(
        "--time-scale",
        type=float,
        default=1.0,
        help="--live arrival pacing multiplier (0 = as fast as possible)",
    )
    output.add_argument(
        "--json", action="store_true", help="print the report as JSON instead of tables"
    )
    output.add_argument(
        "--chrome-trace",
        default="",
        metavar="FILE",
        help="write the telemetry spans as a Chrome trace-event file",
    )
    return parser


def _build_trace(args: argparse.Namespace):
    from repro.__main__ import parse_shape
    from repro.serve.loadgen import (
        DEFAULT_SHAPE_POOL,
        load_trace,
        poisson_trace,
        save_trace,
    )

    if args.trace:
        try:
            trace = load_trace(args.trace)
        except (OSError, ValueError, KeyError) as exc:
            raise SystemExit(f"error: cannot load trace {args.trace!r}: {exc}") from None
    else:
        try:
            shapes = (
                tuple(parse_shape(tok) for tok in args.shapes.split(",") if tok)
                if args.shapes
                else DEFAULT_SHAPE_POOL
            )
        except argparse.ArgumentTypeError as exc:
            raise SystemExit(f"error: {exc}") from None
        trace = poisson_trace(
            rate_rps=args.rate,
            duration_s=args.duration,
            n_requests=args.requests or None,
            shapes=shapes,
            seed=args.seed,
            deadline_us=args.deadline_us or None,
            timeout_us=args.timeout_us or None,
        )
    if not trace:
        raise SystemExit("error: the trace is empty (rate/duration too small?)")
    if getattr(args, "precision", None):
        from dataclasses import replace

        trace = [
            tr if tr.precision is not None else replace(tr, precision=args.precision)
            for tr in trace
        ]
    if args.save_trace:
        save_trace(args.save_trace, trace)
        print(f"wrote {len(trace)} requests to {args.save_trace}", file=sys.stderr)
    return trace


def _build_config(args: argparse.Namespace, heuristic: Heuristic):
    from repro.kernels import ExecutionPolicy
    from repro.reliability import FaultPlan, RetryPolicy
    from repro.serve import (
        AdmissionConfig,
        BatcherConfig,
        ReliabilityConfig,
        ServeConfig,
    )

    fault_plan = None
    if args.inject:
        try:
            fault_plan = FaultPlan.parse(args.inject, seed=args.fault_seed)
        except ValueError as exc:
            raise SystemExit(f"error: bad --inject spec: {exc}") from None
    try:
        reliability = ReliabilityConfig(
            retry=RetryPolicy(max_attempts=args.max_retries),
            fallback=not args.no_fallback,
            bisect=not args.no_bisect,
            breaker_failure_threshold=args.breaker_threshold,
            breaker_cooldown_s=args.breaker_cooldown_s,
            fault_plan=fault_plan,
        )
    except ValueError as exc:
        raise SystemExit(f"error: {exc}") from None
    return ServeConfig(
        workers=args.workers,
        batcher=BatcherConfig(
            max_batch_size=args.max_batch, max_wait_us=args.max_wait_us
        ),
        admission=AdmissionConfig(queue_capacity=args.queue_capacity),
        heuristic=heuristic,
        policy=ExecutionPolicy(
            engine=args.engine,
            workers=args.engine_workers or None,
        ),
        reliability=reliability,
    )


def _run_live(
    trace, framework, config, cache, time_scale: float, operands_seed=None
):
    from repro.serve.server import GemmServer

    operand_rng = None
    if operands_seed is not None:
        import numpy as np

        operand_rng = np.random.default_rng(operands_seed)
    server = GemmServer(framework, config, cache=cache).start()
    prev_us = 0.0
    tickets = []
    for tr in trace:
        gap_s = (tr.arrival_us - prev_us) / 1e6 * time_scale
        if gap_s > 0:
            time.sleep(gap_s)
        prev_us = tr.arrival_us
        operands = None
        if operand_rng is not None:
            g = tr.gemm
            operands = (
                operand_rng.standard_normal((g.m, g.k)),
                operand_rng.standard_normal((g.k, g.n)),
            )
        tickets.append(
            server.submit(
                tr.gemm,
                operands=operands,
                deadline_us=(
                    None if tr.deadline_us is None else tr.deadline_us - tr.arrival_us
                ),
                timeout_us=tr.timeout_us,
                priority=tr.priority,
                precision=tr.precision,
            )
        )
    # Snapshot liveness while the server still accepts -- after close()
    # a health probe would only ever say "shutting down".
    health = server.health()
    server.close(drain=True)
    for t in tickets:
        t.result(timeout=30.0)
    return server.summary(), health


def _parse_kills(specs: list[str], shards: int) -> list[tuple[int, float]]:
    kills = []
    for spec in specs:
        try:
            shard_s, time_s = spec.split("@", 1)
            shard, time_us = int(shard_s), float(time_s)
        except ValueError:
            raise SystemExit(
                f"error: bad --kill-shard {spec!r} (expected SHARD@TIME_US)"
            ) from None
        if not 0 <= shard < shards:
            raise SystemExit(
                f"error: --kill-shard {spec!r}: shard out of range [0, {shards})"
            )
        kills.append((shard, time_us))
    return kills


def _build_cluster_config(args: argparse.Namespace, serve_config):
    from repro.cluster import BloomConfig, ClusterConfig, SupervisorConfig

    try:
        supervisor = None
        if args.supervise:
            supervisor = SupervisorConfig(
                max_restarts=args.max_restarts,
                restart_backoff_us=args.restart_backoff_us,
                failover_limit=args.failover_limit,
            )
        return ClusterConfig(
            shards=args.shards,
            vnodes=args.vnodes,
            steal_threshold=args.steal_threshold or None,
            global_queue_capacity=args.global_queue_capacity or None,
            bloom=BloomConfig(capacity=args.bloom_capacity) if args.bloom else None,
            serve=serve_config,
            cache_capacity=args.cache_capacity,
            supervisor=supervisor,
        )
    except ValueError as exc:
        raise SystemExit(f"error: {exc}") from None


def _run_cluster_live(trace, framework, cluster_config, time_scale: float, kills):
    from repro.cluster import ClusterFrontend

    frontend = ClusterFrontend(framework, cluster_config).start()
    pending_kills = sorted(kills, key=lambda kt: kt[1])
    prev_us = 0.0
    tickets = []
    for tr in trace:
        gap_s = (tr.arrival_us - prev_us) / 1e6 * time_scale
        if gap_s > 0:
            time.sleep(gap_s)
        prev_us = tr.arrival_us
        while pending_kills and tr.arrival_us >= pending_kills[0][1]:
            frontend.kill(pending_kills.pop(0)[0])
        tickets.append(
            frontend.submit(
                tr.gemm,
                deadline_us=(
                    None if tr.deadline_us is None else tr.deadline_us - tr.arrival_us
                ),
                timeout_us=tr.timeout_us,
                priority=tr.priority,
                precision=tr.precision,
            )
        )
    for shard, _ in pending_kills:  # kills scheduled past the last arrival
        frontend.kill(shard)
    health = frontend.cluster_health()
    frontend.close(drain=True)
    for t in tickets:
        t.result(timeout=30.0)
    return frontend.summary(), health


def main(argv: list[str] | None = None) -> int:
    """CLI entry: build the trace, serve it, print the latency report."""
    args = build_parser().parse_args(argv)
    if args.engine_workers and args.engine not in WORKER_ENGINES:
        raise SystemExit(
            "error: --engine-workers requires a worker-pool engine "
            f"(--engine {' | '.join(WORKER_ENGINES)})"
        )
    if args.operands and not args.live:
        raise SystemExit("error: --operands requires --live (replay never executes)")
    if args.shards:
        if args.warm:
            raise SystemExit(
                "error: --warm is per-server; not supported with --shards"
            )
        if args.operands:
            raise SystemExit("error: --operands is not supported with --shards")
    elif args.kill_shard:
        raise SystemExit("error: --kill-shard requires --shards")
    elif args.supervise:
        raise SystemExit("error: --supervise requires --shards")
    if not args.supervise:
        defaults = build_parser()
        for flag in ("max_restarts", "restart_backoff_us", "failover_limit"):
            if getattr(args, flag) != defaults.get_default(flag):
                raise SystemExit(
                    f"error: --{flag.replace('_', '-')} requires --supervise"
                )
    try:
        heuristic = Heuristic.coerce(args.heuristic, warn=False)
    except ValueError as exc:
        raise SystemExit(f"error: {exc}") from None

    from repro.analysis.latency import render_cluster_report, render_serve_report
    from repro.serve.driver import replay_trace

    try:
        device = get_device(args.device)
    except KeyError as exc:
        raise SystemExit(f"error: {exc.args[0]}") from None
    try:
        framework = CoordinatedFramework(
            device=device, precision=args.precision, backend=args.backend
        )
    except (KeyError, ValueError) as exc:
        raise SystemExit(f"error: {exc.args[0]}") from None
    config = _build_config(args, heuristic)
    trace = _build_trace(args)

    health = None
    tracer = Tracer() if args.chrome_trace else NULL_TRACER
    previous = set_tracer(tracer)
    try:
        if args.shards:
            cluster_config = _build_cluster_config(args, config)
            kills = _parse_kills(args.kill_shard, args.shards)
            if args.live:
                report, health = _run_cluster_live(
                    trace, framework, cluster_config, args.time_scale, kills
                )
            else:
                from repro.cluster import replay_cluster_trace

                report = replay_cluster_trace(
                    trace, framework, cluster_config, kill=kills
                )
        else:
            cache = PlanCache(framework, capacity=args.cache_capacity)
            if args.warm:
                scout = replay_trace(trace, framework, config)
                planned = cache.warm(
                    scout.formed_batches,
                    config.heuristic,
                    policy=config.execution_policy(),
                )
                cache.stats = CacheStats()  # report serving-time traffic only
                print(
                    f"warm-start: pre-planned {planned} batch mixes", file=sys.stderr
                )
            if args.live:
                report, health = _run_live(
                    trace,
                    framework,
                    config,
                    cache,
                    args.time_scale,
                    operands_seed=args.seed if args.operands else None,
                )
            else:
                report = replay_trace(trace, framework, config, cache=cache)
    finally:
        set_tracer(previous)

    if args.json:
        payload = report.to_dict()
        if health is not None:
            payload["health"] = health
        print(json.dumps(payload, indent=1))
    elif args.shards:
        print(render_cluster_report(report))
        print(
            "shutdown summary: "
            f"{report.n_completed}/{report.n_requests} completed, "
            f"settlement {report.settlement_share:.1%}, "
            f"{report.n_steals} steals, {report.n_failovers} failovers"
        )
        sup = getattr(report, "supervisor", None)
        if sup is not None:
            print(
                "supervision: "
                f"{sup.get('restarts', 0)} restarts, "
                f"{sup.get('resubmissions', 0)} resubmissions, "
                f"{sup.get('budget_exhausted', 0)} budget-exhausted, "
                f"{sup.get('failover_exhausted', 0)} failover-exhausted, "
                f"ejected {sup.get('ejected', []) or 'none'}"
            )
        if health is not None:
            print(
                "cluster health: "
                f"{'ok' if health['ok'] else 'DEGRADED'}, "
                f"active shards {health['active']}"
            )
    else:
        print(render_serve_report(report))
        stats = report.cache
        print(
            "shutdown summary: "
            f"{report.n_completed}/{report.n_requests} completed, "
            f"cache {stats.hits}h/{stats.misses}m/{stats.evictions}e "
            f"(hit rate {stats.hit_rate:.1%})"
        )
        if health is not None:
            print(
                "server health: "
                f"{'ok' if health['ok'] else 'DEGRADED'}, "
                f"queue depth {health['queue_depth']}, "
                f"breakers {health['breakers']}"
            )
        if report.reliability is not None:
            rel = report.reliability
            print(
                "reliability: "
                f"{rel.get('retries', 0)} retries, "
                f"{rel.get('fallbacks', 0)} fallbacks, "
                f"{rel.get('bisections', 0)} bisections, "
                f"{rel.get('faults_injected', 0)} faults injected"
            )
    if args.chrome_trace:
        try:
            write_chrome_trace(tracer, args.chrome_trace, process_name="repro-serve")
        except OSError as exc:
            raise SystemExit(f"error: cannot write trace file: {exc}") from None
        print(f"wrote telemetry to {args.chrome_trace} (chrome://tracing format)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
