"""Admission control: bounded queueing and deadline-based shedding.

A serving system under overload must refuse work early -- queueing a
request it cannot serve in time wastes planner effort *and* delays the
requests it could have served.  The :class:`AdmissionController`
applies two checks at submission time:

* **backpressure** -- at most ``queue_capacity`` requests may be
  pending in the batcher; beyond that, ``Rejected(queue_full)``.
* **deadline feasibility** -- a request whose absolute deadline is
  closer than the current service-time estimate (an EWMA of observed
  batch latencies, fed back by the workers) cannot be met and is shed
  immediately as ``Rejected(deadline)``.

The estimate starts at zero, so until the first batch completes only
already-expired deadlines are refused; it then sharpens as traffic
flows.  The controller is thread-safe (the wall-clock server calls
``admit`` from the submission thread and ``observe_service`` from
workers).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Optional

from repro.serve.budget import DeadlineBudget
from repro.serve.request import (
    REASON_DEADLINE,
    REASON_QUEUE_FULL,
    Rejected,
    ServeRequest,
)


@dataclass(frozen=True)
class AdmissionConfig:
    """Admission-control policy knobs."""

    queue_capacity: int = 64
    #: EWMA smoothing for the service-time estimate (0 < alpha <= 1).
    ewma_alpha: float = 0.2
    #: Extra margin added to the estimate when testing deadlines.
    deadline_slack_us: float = 0.0

    def __post_init__(self) -> None:
        if self.queue_capacity < 1:
            raise ValueError(
                f"queue_capacity must be >= 1, got {self.queue_capacity}"
            )
        if not 0.0 < self.ewma_alpha <= 1.0:
            raise ValueError(f"ewma_alpha must be in (0, 1], got {self.ewma_alpha}")
        if self.deadline_slack_us < 0:
            raise ValueError(
                f"deadline_slack_us must be >= 0, got {self.deadline_slack_us}"
            )


class AdmissionController:
    """Decides, per request, whether the pipeline should accept it."""

    def __init__(self, config: AdmissionConfig | None = None):
        self.config = config if config is not None else AdmissionConfig()
        self._lock = threading.Lock()
        self._service_estimate_us = 0.0
        self._observations = 0

    @property
    def service_estimate_us(self) -> float:
        """Current EWMA estimate of request service time (0 until fed)."""
        with self._lock:
            return self._service_estimate_us

    def observe_service(self, service_us: float) -> None:
        """Feed back one completed request's arrival-to-finish time."""
        if service_us < 0:
            raise ValueError(f"service_us must be >= 0, got {service_us}")
        with self._lock:
            if self._observations == 0:
                self._service_estimate_us = float(service_us)
            else:
                a = self.config.ewma_alpha
                self._service_estimate_us = (
                    a * float(service_us) + (1.0 - a) * self._service_estimate_us
                )
            self._observations += 1

    def admit(
        self, request: ServeRequest, pending_count: int, now_us: float
    ) -> Optional[Rejected]:
        """``None`` to accept, or the :class:`Rejected` result to return.

        ``pending_count`` is how many admitted requests are already
        waiting (the batcher's depth); the caller holds whatever lock
        makes that count current.

        Deadline feasibility is a :class:`~repro.serve.budget.
        DeadlineBudget` query: the request is admitted iff its budget
        still affords the current service estimate (plus the
        configured slack) -- the entry point of the end-to-end budget
        thread that the batcher, planner, and executor continue.
        """
        if pending_count >= self.config.queue_capacity:
            return Rejected(
                request_id=request.request_id,
                finish_us=now_us,
                latency_us=max(0.0, now_us - request.arrival_us),
                reason=REASON_QUEUE_FULL,
            )
        budget = DeadlineBudget(request.deadline_us)
        if budget.bounded:
            estimate = self.service_estimate_us + self.config.deadline_slack_us
            if not budget.affords(estimate, now_us=now_us):
                return Rejected(
                    request_id=request.request_id,
                    finish_us=now_us,
                    latency_us=max(0.0, now_us - request.arrival_us),
                    reason=REASON_DEADLINE,
                )
        return None
