"""The planner stage: formed batches -> cached plans -> service times.

Routes every :class:`~repro.serve.batcher.FormedBatch` through a
shared thread-safe :class:`~repro.core.plancache.PlanCache`, then
prices the batch on the device model.  The stage charges a configured
*planning overhead* on top of the simulated kernel time: a cache miss
pays the full online planning cost (tiling + both batching heuristics
+ model evaluation -- what the paper's offline mode spends once), a
hit pays only the lookup.  That asymmetry is exactly why the serving
layer warms the cache for known shape mixes.

Simulation results are memoized per plan so that replaying a hot mix
does not re-run the wave model on every batch; the memo holds a strong
reference to each report, so ``id()`` keys cannot be recycled while
the entry lives.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

from repro.core.framework import CoordinatedFramework, HeuristicLike, PlanReport
from repro.core.plancache import PlanCache
from repro.gpu.simulator import SimulationResult
from repro.reliability import SITE_PLANNER, FaultInjector
from repro.serve.batcher import FormedBatch
from repro.serve.budget import BudgetExhausted, DeadlineBudget
from repro.telemetry import get_tracer


@dataclass(frozen=True)
class PlannedBatch:
    """A formed batch with its plan and priced service time."""

    formed: FormedBatch
    report: PlanReport
    sim: SimulationResult
    cache_hit: bool
    plan_us: float  # planning overhead charged (miss vs hit)

    @property
    def service_us(self) -> float:
        """Planning overhead plus simulated device time."""
        return self.plan_us + self.sim.time_us


class PlannerStage:
    """Plans formed batches through a shared cache (thread-safe)."""

    def __init__(
        self,
        framework: CoordinatedFramework,
        cache: PlanCache | None = None,
        *,
        heuristic: HeuristicLike = None,
        miss_overhead_us: float = 200.0,
        hit_overhead_us: float = 5.0,
        injector: FaultInjector | None = None,
    ):
        if miss_overhead_us < 0 or hit_overhead_us < 0:
            raise ValueError("planning overheads must be >= 0")
        self.framework = framework
        self.cache = cache if cache is not None else PlanCache(framework, capacity=256)
        self.heuristic = heuristic
        self.miss_overhead_us = miss_overhead_us
        self.hit_overhead_us = hit_overhead_us
        #: Optional chaos harness; the ``"planner"`` fault site is
        #: evaluated on every :meth:`plan` call (error faults raise out
        #: of it, slow faults are charged into ``plan_us``).
        self.injector = injector
        self._lock = threading.Lock()
        # id(report) -> (report, sim); the report reference keeps the id stable.
        self._sim_memo: dict[int, tuple[PlanReport, SimulationResult]] = {}

    def plan(
        self, formed: FormedBatch, *, budget: DeadlineBudget | None = None
    ) -> PlannedBatch:
        """Plan (or look up) one formed batch and price its service.

        ``budget`` -- the batch's :class:`DeadlineBudget`, when the
        caller threads one -- is charged for injected slow-fault
        penalties: a penalty the budget cannot afford raises
        :class:`BudgetExhausted` instead of silently pricing work that
        will finish past the deadline.  The replay drivers plan without
        a budget (virtual time never *waits* for the penalty).
        """
        if not formed.requests:
            raise ValueError("cannot plan an empty batch (pure shed event)")
        batch = formed.to_gemm_batch()
        penalty_us = 0.0
        if self.injector is not None:
            penalty_us = self.injector.check(SITE_PLANNER) * 1e3
            if (
                budget is not None
                and penalty_us > 0.0
                and not budget.affords(penalty_us)
            ):
                raise BudgetExhausted(
                    f"injected planner slow-fault of {penalty_us:.0f}us "
                    f"exceeds the batch's remaining deadline budget"
                )
        heuristic = self.heuristic
        if formed.precision is not None:
            # Requests pinned a storage precision: plan (and cache) the
            # batch under it so strategy pools, occupancy, and the cache
            # key are all dtype-qualified.
            from dataclasses import replace as _replace

            opts = self.framework.resolve_options(heuristic)
            if opts.precision != formed.precision:
                heuristic = _replace(opts, precision=formed.precision)
            else:
                heuristic = opts
        with get_tracer().span(
            "serve.plan", batch_id=formed.batch_id, gemms=len(batch)
        ) as span:
            report, hit = self.cache.plan_with_info(batch, heuristic)
            sim = self._simulate(report)
            if span.enabled:
                span.set_attr("cache_hit", hit)
                span.set_attr("sim_us", sim.time_us)
        return PlannedBatch(
            formed=formed,
            report=report,
            sim=sim,
            cache_hit=hit,
            plan_us=(self.hit_overhead_us if hit else self.miss_overhead_us)
            + penalty_us,
        )

    def _simulate(self, report: PlanReport) -> SimulationResult:
        key = id(report)
        with self._lock:
            memo = self._sim_memo.get(key)
            if memo is not None and memo[0] is report:
                return memo[1]
        sim = self.framework.simulate_plan(report)
        with self._lock:
            if len(self._sim_memo) > 4 * self.cache.capacity:
                self._sim_memo.clear()
            self._sim_memo[key] = (report, sim)
        return sim
