"""End-to-end deadline budgets: honest deadlines under faults.

A request's deadline is a *budget*, not a hint.  Pre-budget, the
serving pipeline checked deadlines only at admission (feasibility
against the EWMA estimate) and at batch formation (shedding the
already-expired) -- but the fault-tolerance machinery underneath
(:class:`~repro.reliability.ReliableExecutor` retries, engine
fallback, planner retries) happily burned wall time on a request whose
deadline had long passed, and a failover resubmission could be issued
for a ticket that no shard could possibly finish in time.

:class:`DeadlineBudget` makes the deadline a first-class resource that
every stage charges against:

* **admission** tests feasibility as "does the budget afford the
  current service estimate";
* the **batcher** sheds a pending request exactly when its budget is
  exhausted;
* the **planner** refuses to charge an injected slow-fault penalty the
  budget cannot afford;
* the **executor** skips a retry backoff that does not fit the
  remaining budget (abandoning that engine) and refuses to *start* a
  fallback attempt once the budget is spent -- raising
  :class:`BudgetExhausted` so the caller fails fast to the next
  engine or shard instead of completing work nobody can use;
* the **cluster tier** settles a shard-kill casualty whose budget is
  already spent as the typed ``budget_exhausted`` rejection instead
  of resubmitting it along the ring.

The budget is deliberately clock-agnostic: bind a ``clock_us``
callable (the live server binds its own ``_now_us``) or pass an
explicit ``now_us`` per query (the virtual-time drivers do), so the
same object serves both wall-clock and deterministic replay modes.
A budget with no deadline is infinite -- every query is free -- so the
happy path costs one comparison and nothing else.

This module is dependency-free (stdlib only) on purpose: it is
imported by :mod:`repro.serve` *and* lazily by
:mod:`repro.reliability.executor`, and must never participate in the
import cycle between those packages.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Iterable, Optional

__all__ = ["BudgetExhausted", "DeadlineBudget"]


class BudgetExhausted(RuntimeError):
    """The deadline budget was spent before the work could finish.

    Raised by budget-aware stages (planner retry, executor fallback)
    to *fail fast*: the request should move to the next engine/shard
    -- or settle as the typed ``budget_exhausted`` rejection -- rather
    than keep consuming pipeline capacity on an answer that can no
    longer arrive in time.
    """


@dataclass(frozen=True)
class DeadlineBudget:
    """The remaining time a request may spend, measured against a clock.

    Parameters
    ----------
    deadline_us:
        The absolute deadline on the owning pipeline's clock; ``None``
        means unbounded (every query answers "plenty left").
    clock_us:
        Optional bound time source (microseconds, same timebase as the
        deadline).  Queries may instead pass ``now_us`` explicitly --
        virtual-time callers do; binding a clock is the live server's
        convenience.
    """

    deadline_us: Optional[float] = None
    clock_us: Optional[Callable[[], float]] = None

    @property
    def bounded(self) -> bool:
        """Whether this budget can ever run out."""
        return self.deadline_us is not None

    def _now(self, now_us: Optional[float]) -> float:
        if now_us is not None:
            return now_us
        if self.clock_us is not None:
            return self.clock_us()
        raise ValueError(
            "DeadlineBudget query needs a clock: bind clock_us or pass now_us"
        )

    def remaining_us(self, now_us: Optional[float] = None) -> float:
        """Microseconds left before the deadline (``inf`` if unbounded)."""
        if self.deadline_us is None:
            return math.inf
        return self.deadline_us - self._now(now_us)

    def exhausted(self, now_us: Optional[float] = None) -> bool:
        """True once the deadline has passed."""
        return self.remaining_us(now_us) <= 0.0

    def affords(self, cost_us: float, now_us: Optional[float] = None) -> bool:
        """Whether ``cost_us`` more work can finish inside the budget."""
        return self.remaining_us(now_us) > cost_us

    @classmethod
    def for_requests(
        cls, requests: Iterable, *, clock_us: Optional[Callable[[], float]] = None
    ) -> "DeadlineBudget":
        """The tightest budget across a batch of requests.

        A batch is served as one unit, so the stage charging against
        the batch must respect its most urgent member; requests
        without a deadline contribute nothing (a batch of deadline-free
        requests gets an unbounded budget).
        """
        deadlines = [
            r.deadline_us for r in requests if r.deadline_us is not None
        ]
        return cls(min(deadlines) if deadlines else None, clock_us)
