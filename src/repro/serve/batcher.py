"""Dynamic batching: coalescing single GEMMs into planner batches.

The paper's planner amortizes over *batches* -- a lone 64x784x192 GEMM
cannot fill a V100, but thirty of them fused into one kernel can
(Section 2).  Online traffic arrives one GEMM at a time, so the
:class:`DynamicBatcher` holds pending requests and forms a
:class:`~repro.core.problem.GemmBatch` when either trigger trips:

* **size** -- ``max_batch_size`` requests are pending, or
* **window** -- the oldest pending request has waited ``max_wait_us``.

Batches are filled highest-priority first (ties broken by arrival,
then id, so formation is deterministic).  Requests whose absolute
deadline has already passed are *shed* at formation time -- dropped
before any planning effort is spent on them; the pipeline resolves
them as ``Rejected(reason="deadline")``.

No shape bucketing: the coordinated framework plans variable-size
batches natively (that is its whole point), so mixing shapes in one
batch is fine and keeps the window short.  The batcher is pure
bookkeeping -- it never reads a clock; callers pass ``now_us``, which
makes it reusable verbatim by both the wall-clock server and the
deterministic virtual-time replay driver.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.core.problem import GemmBatch
from repro.serve.budget import DeadlineBudget
from repro.serve.request import ServeRequest


@dataclass(frozen=True)
class BatcherConfig:
    """Batch-formation policy knobs."""

    max_batch_size: int = 16
    max_wait_us: float = 2000.0

    def __post_init__(self) -> None:
        if self.max_batch_size < 1:
            raise ValueError(
                f"max_batch_size must be >= 1, got {self.max_batch_size}"
            )
        if self.max_wait_us < 0:
            raise ValueError(f"max_wait_us must be >= 0, got {self.max_wait_us}")


@dataclass
class FormedBatch:
    """One batch the batcher decided to emit.

    ``requests`` is what goes to the planner (may be empty when every
    pending request was shed -- the caller then only resolves ``shed``
    and plans nothing); ``shed`` are the deadline-expired requests
    dropped at formation.
    """

    batch_id: int
    formed_us: float
    trigger: str  # "size" | "window" | "flush"
    requests: list[ServeRequest] = field(default_factory=list)
    shed: list[ServeRequest] = field(default_factory=list)

    @property
    def occupancy(self) -> int:
        """How full the batch is (requests actually carried)."""
        return len(self.requests)

    @property
    def precision(self) -> str | None:
        """The batch's storage precision, when the requests agree.

        The unique precision pinned by the carried requests; ``None``
        when no request pinned one *or* when requests disagree (a
        mixed batch plans at the framework default -- routing keys are
        dtype-qualified, so a cluster front-end never forms one, but a
        single-node server with interleaved dtypes can).
        """
        pinned = {r.precision for r in self.requests if r.precision is not None}
        if len(pinned) == 1:
            return next(iter(pinned))
        return None

    def to_gemm_batch(self) -> GemmBatch:
        """The planner-facing problem description."""
        return GemmBatch(r.gemm for r in self.requests)


class DynamicBatcher:
    """Accumulates requests and emits batches on size/window triggers.

    Not thread-safe -- the server serializes access under its own lock;
    the replay driver is single-threaded.
    """

    def __init__(self, config: BatcherConfig | None = None):
        self.config = config if config is not None else BatcherConfig()
        self._pending: list[ServeRequest] = []
        self._next_batch_id = 0

    def __len__(self) -> int:
        return len(self._pending)

    @property
    def pending_count(self) -> int:
        return len(self._pending)

    def offer(self, request: ServeRequest) -> None:
        """Queue one admitted request for batching."""
        self._pending.append(request)

    def oldest_arrival_us(self) -> Optional[float]:
        """Arrival time of the longest-waiting pending request."""
        if not self._pending:
            return None
        return min(r.arrival_us for r in self._pending)

    def window_deadline_us(self) -> Optional[float]:
        """When the wait-window trigger will trip (None when idle)."""
        oldest = self.oldest_arrival_us()
        if oldest is None:
            return None
        return oldest + self.config.max_wait_us

    def _shed_expired(self, now_us: float) -> list[ServeRequest]:
        # A request is shed exactly when its deadline budget is spent
        # at formation time -- the same DeadlineBudget the admission
        # controller and executor consult, so the three stages cannot
        # disagree about what "expired" means.
        expired = [
            r
            for r in self._pending
            if DeadlineBudget(r.deadline_us).exhausted(now_us=now_us)
        ]
        if expired:
            dead = set(id(r) for r in expired)
            self._pending = [r for r in self._pending if id(r) not in dead]
        return expired

    def _take(self, count: int) -> list[ServeRequest]:
        chosen = sorted(
            self._pending, key=lambda r: (-r.priority, r.arrival_us, r.request_id)
        )[:count]
        taken = set(id(r) for r in chosen)
        self._pending = [r for r in self._pending if id(r) not in taken]
        return chosen

    def _emit(self, now_us: float, trigger: str, requests, shed) -> FormedBatch:
        batch = FormedBatch(
            batch_id=self._next_batch_id,
            formed_us=now_us,
            trigger=trigger,
            requests=requests,
            shed=shed,
        )
        self._next_batch_id += 1
        return batch

    def poll(self, now_us: float) -> Optional[FormedBatch]:
        """Form a batch if a trigger has tripped at ``now_us``.

        Returns ``None`` when neither trigger is due and nothing
        expired.  A returned batch with ``requests == []`` means the
        window tripped but every waiter had already blown its deadline
        (pure shed event).
        """
        if not self._pending:
            return None
        shed = self._shed_expired(now_us)
        cfg = self.config
        if len(self._pending) >= cfg.max_batch_size:
            return self._emit(now_us, "size", self._take(cfg.max_batch_size), shed)
        oldest = self.oldest_arrival_us()
        if oldest is not None and now_us - oldest >= cfg.max_wait_us:
            return self._emit(
                now_us, "window", self._take(cfg.max_batch_size), shed
            )
        if shed:
            return self._emit(now_us, "window", [], shed)
        return None

    def drain_pending(self) -> list[ServeRequest]:
        """Remove and return everything pending (non-drain shutdown)."""
        pending, self._pending = self._pending, []
        return pending

    def flush(self, now_us: float) -> list[FormedBatch]:
        """Drain everything pending (shutdown), in max-size chunks."""
        batches: list[FormedBatch] = []
        shed = self._shed_expired(now_us)
        while self._pending:
            batches.append(
                self._emit(
                    now_us, "flush", self._take(self.config.max_batch_size), shed
                )
            )
            shed = []
        if shed:  # everything pending had expired
            batches.append(self._emit(now_us, "flush", [], shed))
        return batches
