"""Online dynamic-batching GEMM serving.

The paper's motivating workload is DNN inference: the same small
GEMMs arrive continuously and only pay off once fused into batches the
coordinated planner can schedule (Sections 2, 5).  This package closes
that loop -- it is the *online* layer in front of the offline planner:

* :mod:`repro.serve.request` -- request/result types
  (``Completed`` / ``Rejected`` / ``TimedOut``);
* :mod:`repro.serve.batcher` -- the dynamic batcher (size and
  wait-window triggers, priority fill, deadline shedding);
* :mod:`repro.serve.admission` -- bounded-queue backpressure and
  deadline-based load shedding;
* :mod:`repro.serve.planner` -- the planner stage over a shared
  thread-safe :class:`~repro.core.plancache.PlanCache`;
* :mod:`repro.serve.server` -- the live threaded server
  (:class:`GemmServer`);
* :mod:`repro.serve.driver` -- deterministic virtual-time replay
  (:func:`replay_trace`);
* :mod:`repro.serve.loadgen` -- open-loop Poisson traces and a
  closed-loop client swarm;
* :mod:`repro.serve.cli` -- the ``repro-serve`` command.

Fault tolerance (retries, engine fallback behind circuit breakers,
poison-batch bisection, seeded chaos injection) is configured through
``ServeConfig.reliability`` (:class:`ReliabilityConfig`) and built on
:mod:`repro.reliability`; see ``docs/reliability.md``.

Quickstart (deterministic replay)::

    from repro.serve import ServeConfig, poisson_trace, replay_trace
    from repro.analysis.latency import render_serve_report

    trace = poisson_trace(rate_rps=2000, duration_s=0.25, seed=0)
    report = replay_trace(trace, config=ServeConfig(workers=2))
    print(render_serve_report(report))

Quickstart (live server)::

    from repro import Gemm
    from repro.serve import GemmServer

    with GemmServer() as server:
        ticket = server.submit(Gemm(64, 784, 192), deadline_us=50_000)
        print(ticket.result(timeout=5.0))
"""

from repro.serve.admission import AdmissionConfig, AdmissionController
from repro.serve.batcher import BatcherConfig, DynamicBatcher, FormedBatch
from repro.serve.budget import BudgetExhausted, DeadlineBudget
from repro.serve.config import ReliabilityConfig, ServeConfig
from repro.serve.driver import replay_trace
from repro.serve.loadgen import (
    DEFAULT_SHAPE_POOL,
    TraceRequest,
    load_trace,
    poisson_trace,
    run_closed_loop,
    save_trace,
)
from repro.serve.planner import PlannedBatch, PlannerStage
from repro.serve.report import ServeReport, compile_report
from repro.serve.request import (
    REASON_BUDGET_EXHAUSTED,
    REASON_DEADLINE,
    REASON_ERROR_PREFIX,
    REASON_FAILOVER_EXHAUSTED,
    REASON_QUEUE_FULL,
    REASON_SHUTDOWN,
    REASON_STRANDED,
    Completed,
    Rejected,
    RequestStatus,
    ServeRequest,
    ServeResult,
    TimedOut,
    error_reason,
    is_error_reason,
)
from repro.serve.server import GemmServer, ServeTicket

__all__ = [
    "AdmissionConfig",
    "AdmissionController",
    "BatcherConfig",
    "BudgetExhausted",
    "DeadlineBudget",
    "DynamicBatcher",
    "FormedBatch",
    "ReliabilityConfig",
    "ServeConfig",
    "replay_trace",
    "DEFAULT_SHAPE_POOL",
    "TraceRequest",
    "load_trace",
    "poisson_trace",
    "run_closed_loop",
    "save_trace",
    "PlannedBatch",
    "PlannerStage",
    "ServeReport",
    "compile_report",
    "REASON_BUDGET_EXHAUSTED",
    "REASON_DEADLINE",
    "REASON_ERROR_PREFIX",
    "REASON_FAILOVER_EXHAUSTED",
    "REASON_QUEUE_FULL",
    "REASON_SHUTDOWN",
    "REASON_STRANDED",
    "Completed",
    "Rejected",
    "RequestStatus",
    "ServeRequest",
    "ServeResult",
    "TimedOut",
    "error_reason",
    "is_error_reason",
    "GemmServer",
    "ServeTicket",
]
