"""The serving run report: outcome counts, tail latency, cache traffic.

Both serving modes -- the deterministic virtual-time replay
(:func:`repro.serve.driver.replay_trace`) and the live wall-clock
server (:meth:`repro.serve.server.GemmServer.summary`) -- compile
their measurements into the same :class:`ServeReport`, rendered by
:func:`repro.analysis.latency.render_serve_report`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional, Sequence

from repro.analysis.latency import LatencyStats
from repro.core.plancache import CacheStats
from repro.core.problem import GemmBatch
from repro.serve.request import (
    REASON_DEADLINE,
    REASON_QUEUE_FULL,
    Completed,
    Rejected,
    ServeResult,
    TimedOut,
    is_error_reason,
)


@dataclass(frozen=True)
class ServeReport:
    """Everything one serving run measured."""

    time_base: str  # "virtual" (replay) or "wall" (live server)
    n_requests: int
    n_completed: int
    n_rejected_queue: int
    n_shed_deadline: int
    n_rejected_other: int  # shutdown / internal errors
    n_rejected_error: int  # the error:<Exc> subset of n_rejected_other
    n_timed_out: int
    n_deadline_misses: int  # completed, but after their deadline
    n_batches: int
    mean_occupancy: float
    max_occupancy: int
    max_batch_size: int
    makespan_us: float
    throughput_rps: float
    latency: LatencyStats
    queue_latency: LatencyStats
    cache: CacheStats
    results: tuple[ServeResult, ...]
    #: The planner-facing batches actually formed, in formation order;
    #: feed these to :meth:`PlanCache.warm` to pre-plan a known mix.
    formed_batches: tuple[GemmBatch, ...] = ()
    #: Fault-tolerance counters (retries, fallbacks, bisections,
    #: injected faults, breaker states); ``None`` when the serving
    #: mode has no reliability layer attached.
    reliability: Optional[dict] = None

    def to_dict(self) -> dict:
        """JSON-compatible summary (excludes the formed batches)."""
        return {
            "time_base": self.time_base,
            "n_requests": self.n_requests,
            "n_completed": self.n_completed,
            "n_rejected_queue": self.n_rejected_queue,
            "n_shed_deadline": self.n_shed_deadline,
            "n_rejected_other": self.n_rejected_other,
            "n_rejected_error": self.n_rejected_error,
            "n_timed_out": self.n_timed_out,
            "n_deadline_misses": self.n_deadline_misses,
            "n_batches": self.n_batches,
            "mean_occupancy": self.mean_occupancy,
            "max_occupancy": self.max_occupancy,
            "max_batch_size": self.max_batch_size,
            "makespan_us": self.makespan_us,
            "throughput_rps": self.throughput_rps,
            "latency": self.latency.to_dict(),
            "queue_latency": self.queue_latency.to_dict(),
            "cache": self.cache.as_dict(),
            "reliability": self.reliability,
            "results": [r.to_dict() for r in self.results],
        }


def compile_report(
    *,
    results: Mapping[int, ServeResult] | Sequence[ServeResult],
    occupancies: Sequence[int],
    makespan_us: float,
    cache: CacheStats,
    max_batch_size: int,
    time_base: str,
    formed_batches: Sequence[GemmBatch] = (),
    reliability: Optional[dict] = None,
) -> ServeReport:
    """Aggregate raw per-request results into a :class:`ServeReport`."""
    if isinstance(results, Mapping):
        ordered = tuple(results[k] for k in sorted(results))
    else:
        ordered = tuple(sorted(results, key=lambda r: r.request_id))
    completed = [r for r in ordered if isinstance(r, Completed)]
    rejected = [r for r in ordered if isinstance(r, Rejected)]
    timed_out = [r for r in ordered if isinstance(r, TimedOut)]
    n_queue = sum(1 for r in rejected if r.reason == REASON_QUEUE_FULL)
    n_shed = sum(1 for r in rejected if r.reason == REASON_DEADLINE)
    n_error = sum(1 for r in rejected if is_error_reason(r.reason))
    makespan_s = makespan_us / 1e6
    return ServeReport(
        time_base=time_base,
        n_requests=len(ordered),
        n_completed=len(completed),
        n_rejected_queue=n_queue,
        n_shed_deadline=n_shed,
        n_rejected_other=len(rejected) - n_queue - n_shed,
        n_rejected_error=n_error,
        n_timed_out=len(timed_out),
        n_deadline_misses=sum(1 for r in completed if not r.deadline_met),
        n_batches=len(occupancies),
        mean_occupancy=(sum(occupancies) / len(occupancies)) if occupancies else 0.0,
        max_occupancy=max(occupancies) if occupancies else 0,
        max_batch_size=max_batch_size,
        makespan_us=makespan_us,
        throughput_rps=(len(completed) / makespan_s) if makespan_s > 0 else 0.0,
        latency=LatencyStats.from_us([r.latency_us for r in completed]),
        queue_latency=LatencyStats.from_us([r.queue_us for r in completed]),
        cache=cache,
        results=ordered,
        formed_batches=tuple(formed_batches),
        reliability=reliability,
    )
