"""Request and result types of the serving layer.

A :class:`ServeRequest` is one GEMM submitted to the server: the
problem description, when it arrived, and its service constraints
(deadline, timeout, priority).  Operand data is optional -- with
operands the workers execute the planned schedule numerically (the
persistent-kernel path); without, they time it on the device model
(the simulator path).

Every request resolves to exactly one structured result:

* :class:`Completed` -- served; carries the latency breakdown, the
  batch it rode in, and (when operands were supplied) the C output.
* :class:`Rejected` -- not served: the admission controller turned it
  away (``queue_full``, ``deadline``), the server was shutting down
  (``shutdown``), or the request failed in the pipeline
  (``error:<ExcName>``).  Deadline-based load shedding produces
  ``reason="deadline"``.
* :class:`TimedOut` -- planned and served, but its per-request timeout
  elapsed before completion; the work is wasted and the caller should
  treat it as failed.

Rejection reasons form a small closed taxonomy:

======================  ===============================================
``queue_full``          admission backpressure (queue was at capacity)
``deadline``            infeasible or expired deadline (admission or
                        shed)
``shutdown``            the server stopped before the request was
                        served
``budget_exhausted``    the request's :class:`~repro.serve.budget.
                        DeadlineBudget` was spent before a retry or
                        failover path could finish it -- the honest
                        settlement for a deadline blown mid-recovery
                        (a shard-kill casualty whose deadline already
                        passed, or a batch whose remaining budget
                        cannot pay for another attempt)
``failover_exhausted``  a shard-kill casualty was resubmitted along
                        the ring up to the supervisor's failover
                        limit and still found no shard to complete it
``error:<Exc>``         planning or execution failed after retries,
                        fallback, and (for multi-request batches)
                        poison bisection; ``<Exc>`` is the exception
                        class name, e.g. ``error:InjectedFault`` or
                        ``error:ValueError``
``error:Stranded``      the crash-barrier sweep settled a ticket whose
                        pipeline thread died (never under normal
                        operation)
======================  ===============================================

``budget_exhausted`` and ``failover_exhausted`` are *plain* reasons,
not ``error:``-typed: they describe a policy decision (the deadline or
the resubmit limit won), not a pipeline defect, so they land in
``n_rejected_other`` -- but they are still terminal, typed
settlements; the 100%-settlement contract covers them.

All times are microseconds.  Deadlines are *absolute* (on the
server's clock); timeouts are *relative* to arrival.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Any, ClassVar, Optional

from repro.core.problem import Gemm

#: Rejection reasons (the ``Rejected.reason`` vocabulary).
REASON_QUEUE_FULL = "queue_full"
REASON_DEADLINE = "deadline"
REASON_SHUTDOWN = "shutdown"
#: The deadline budget ran out before a retry/failover could finish.
REASON_BUDGET_EXHAUSTED = "budget_exhausted"
#: A shard-kill casualty exhausted its failover resubmissions.
REASON_FAILOVER_EXHAUSTED = "failover_exhausted"
#: Prefix of the failure branch of the taxonomy (``error:<ExcName>``).
REASON_ERROR_PREFIX = "error:"
#: A ticket settled by the crash-barrier sweep (owning thread died).
REASON_STRANDED = "error:Stranded"


def error_reason(exc: BaseException) -> str:
    """The typed rejection reason for a pipeline failure."""
    return f"{REASON_ERROR_PREFIX}{type(exc).__name__}"


def is_error_reason(reason: str) -> bool:
    """Whether ``reason`` is from the failure branch of the taxonomy."""
    return reason.startswith(REASON_ERROR_PREFIX)


class RequestStatus(str, Enum):
    """Terminal state of a served request."""

    COMPLETED = "completed"
    REJECTED = "rejected"
    TIMED_OUT = "timed_out"


@dataclass(frozen=True)
class ServeRequest:
    """One GEMM in flight through the serving pipeline."""

    request_id: int
    gemm: Gemm
    arrival_us: float
    deadline_us: Optional[float] = None
    timeout_us: Optional[float] = None
    priority: int = 0
    operands: Any = None  # optional (A, B, C) arrays for numerical execution
    precision: Optional[str] = None  # storage precision ("fp32"/"fp16"/"bf16")
    #: How many times this request has been resubmitted along the ring
    #: after a shard kill (0 = the original submission).  Bounded by
    #: the supervisor's ``failover_limit``.
    failover: int = 0

    def __post_init__(self) -> None:
        if self.failover < 0:
            raise ValueError(f"failover must be >= 0, got {self.failover}")
        if self.arrival_us < 0:
            raise ValueError(f"arrival_us must be >= 0, got {self.arrival_us}")
        if self.timeout_us is not None and self.timeout_us <= 0:
            raise ValueError(f"timeout_us must be positive, got {self.timeout_us}")
        if self.precision is not None:
            from repro.core.precision import Precision

            object.__setattr__(
                self, "precision", Precision.coerce(self.precision).value
            )

    @property
    def timeout_deadline_us(self) -> Optional[float]:
        """Absolute time at which the per-request timeout elapses."""
        if self.timeout_us is None:
            return None
        return self.arrival_us + self.timeout_us


@dataclass(frozen=True)
class ServeResult:
    """Common shape of every terminal result (see the subclasses)."""

    status: ClassVar[RequestStatus]

    request_id: int
    finish_us: float
    latency_us: float

    @property
    def ok(self) -> bool:
        return self.status is RequestStatus.COMPLETED

    def to_dict(self) -> dict:
        """Return the result as a JSON-compatible dict."""
        d = {
            "request_id": self.request_id,
            "status": self.status.value,
            "finish_us": self.finish_us,
            "latency_us": self.latency_us,
        }
        return d


@dataclass(frozen=True)
class Completed(ServeResult):
    """Served within its constraints (or with none set).

    ``queue_us`` is time from arrival to batch dispatch; ``service_us``
    is the batch's planning + execution time; ``deadline_met`` is False
    when the request finished but after its (absolute) deadline --
    shedding tries to prevent this, but an estimate can be wrong.
    ``value`` is the numerical C output when operands were submitted.
    """

    status: ClassVar[RequestStatus] = RequestStatus.COMPLETED

    batch_id: int = -1
    batch_size: int = 0
    queue_us: float = 0.0
    service_us: float = 0.0
    deadline_met: bool = True
    value: Any = None

    def to_dict(self) -> dict:
        """Return the result as a dict; adds batch/latency detail (never the value payload)."""
        d = super().to_dict()
        d.update(
            batch_id=self.batch_id,
            batch_size=self.batch_size,
            queue_us=self.queue_us,
            service_us=self.service_us,
            deadline_met=self.deadline_met,
        )
        return d


@dataclass(frozen=True)
class Rejected(ServeResult):
    """Turned away before planning (admission control or shutdown)."""

    status: ClassVar[RequestStatus] = RequestStatus.REJECTED

    reason: str = REASON_QUEUE_FULL

    def to_dict(self) -> dict:
        """Return the result as a dict; adds the rejection reason."""
        d = super().to_dict()
        d["reason"] = self.reason
        return d


@dataclass(frozen=True)
class TimedOut(ServeResult):
    """Served, but only after the per-request timeout had elapsed."""

    status: ClassVar[RequestStatus] = RequestStatus.TIMED_OUT

    batch_id: int = -1

    def to_dict(self) -> dict:
        """Return the result as a dict; adds the losing batch id."""
        d = super().to_dict()
        d["batch_id"] = self.batch_id
        return d
