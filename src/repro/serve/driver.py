"""Deterministic virtual-time replay of a traffic trace.

:func:`replay_trace` runs the full serving pipeline -- admission,
dynamic batching, cached planning, a bounded worker pool -- as a
discrete-event simulation on a **virtual clock**.  Arrival times come
from the trace; service times come from the device model
(:meth:`CoordinatedFramework.simulate_plan`) plus the configured
planning overhead.  Nothing reads a wall clock or depends on thread
scheduling, so the same trace, config and cache state always produce
the *identical* report -- the property the serving benchmarks and the
``repro-serve`` CLI rely on.

Event kinds, in one heap ordered by (time, insertion sequence):

* ``arrive`` -- admission-check the request, queue it, schedule its
  wait-window expiry.
* ``window`` -- re-poll the batcher (the oldest waiter's window may
  have tripped).
* ``complete`` -- a worker finished a batch: resolve its requests,
  feed the admission EWMA, dispatch the next queued batch.

Batches dispatch FIFO to the first of ``config.workers`` free worker
slots; a slot stays busy for the batch's planning + simulated kernel
time, which is how queueing delay emerges under overload.  Under a
``compiled`` execution policy the first dispatch of each distinct
plan is additionally charged ``config.compile_overhead_us`` (the
one-off artifact compilation, counted as ``serve.compiles_charged``);
later dispatches of the same plan charge nothing extra, mirroring the
live server's warm hot path.

Fault tolerance: when ``config.reliability.fault_plan`` is set, a
:class:`~repro.reliability.FaultInjector` is attached to the planner
stage with ``sleep=None`` -- slow faults are *charged into virtual
time* (as extra ``plan_us``) instead of wall-sleeping, and planner
error faults are retried per the retry policy with the backoff delays
likewise charged virtually.  A batch whose planning still fails is
rejected with the typed ``error:<ExcName>`` reason and its latency is
fed to the admission EWMA, mirroring the live server's error path.
Replay never executes operands, so the engine fallback chain and
poison bisection have no virtual-time counterpart; the report's
``reliability`` dict carries the planner-side counters.
"""

from __future__ import annotations

import heapq
import itertools
from collections import deque
from typing import Optional, Sequence

from repro.core.framework import CoordinatedFramework
from repro.core.plancache import PlanCache
from repro.reliability import FaultInjector
from repro.serve.admission import AdmissionController
from repro.serve.batcher import DynamicBatcher, FormedBatch
from repro.serve.config import ServeConfig
from repro.serve.loadgen import TraceRequest
from repro.serve.planner import PlannedBatch, PlannerStage
from repro.serve.report import ServeReport, compile_report
from repro.serve.request import (
    REASON_DEADLINE,
    Completed,
    Rejected,
    ServeRequest,
    ServeResult,
    TimedOut,
    error_reason,
)
from repro.telemetry import get_tracer


def replay_trace(
    trace: Sequence[TraceRequest],
    framework: Optional[CoordinatedFramework] = None,
    config: Optional[ServeConfig] = None,
    *,
    cache: Optional[PlanCache] = None,
) -> ServeReport:
    """Serve ``trace`` in virtual time and report what happened.

    ``cache`` may be a pre-warmed :class:`PlanCache` (see
    :meth:`PlanCache.warm` and ``ServeReport.formed_batches``); by
    default a fresh one is created, so the first batch of every
    distinct shape mix pays the miss overhead.
    """
    framework = framework if framework is not None else CoordinatedFramework()
    config = config if config is not None else ServeConfig()
    reliability_cfg = config.reliability
    # sleep=None: slow faults are charged into virtual time, not slept.
    injector = (
        FaultInjector(reliability_cfg.fault_plan, sleep=None)
        if reliability_cfg.fault_plan is not None
        else None
    )
    batcher = DynamicBatcher(config.batcher)
    admission = AdmissionController(config.admission)
    planner = PlannerStage(
        framework,
        cache,
        heuristic=config.heuristic,
        miss_overhead_us=config.miss_overhead_us,
        hit_overhead_us=config.hit_overhead_us,
        injector=injector,
    )
    tracer = get_tracer()

    seq = itertools.count()
    events: list[tuple[float, int, str, object]] = []

    def push(time_us: float, kind: str, payload: object) -> None:
        heapq.heappush(events, (time_us, next(seq), kind, payload))

    for i, tr in enumerate(sorted(trace, key=lambda t: t.arrival_us)):
        push(
            tr.arrival_us,
            "arrive",
            ServeRequest(
                request_id=i,
                gemm=tr.gemm,
                arrival_us=tr.arrival_us,
                deadline_us=tr.deadline_us,
                timeout_us=tr.timeout_us,
                priority=tr.priority,
                precision=getattr(tr, "precision", None),
            ),
        )

    results: dict[int, ServeResult] = {}
    occupancies: list[int] = []
    formed_batches: list = []
    batch_fifo: deque[FormedBatch] = deque()
    free_workers = config.workers
    makespan_us = 0.0
    planner_retries = 0
    batch_failures = 0

    def resolve_shed(fb: FormedBatch, now_us: float) -> None:
        for r in fb.shed:
            results[r.request_id] = Rejected(
                request_id=r.request_id,
                finish_us=now_us,
                latency_us=now_us - r.arrival_us,
                reason=REASON_DEADLINE,
            )
            tracer.counter("serve.requests_shed")

    def plan_with_retry(fb: FormedBatch) -> tuple[PlannedBatch, float]:
        """Plan ``fb``, retrying per policy; returns (plan, delay charged).

        Backoff delays are *virtual*: accumulated and charged into the
        batch's service interval rather than slept.
        """
        nonlocal planner_retries
        policy = config.reliability.retry
        delay_us = 0.0
        for attempt in range(1, policy.max_attempts + 1):
            try:
                return planner.plan(fb), delay_us
            except Exception:
                if attempt >= policy.max_attempts:
                    raise
                planner_retries += 1
                delay_us += policy.delay_ms(attempt, token="planner") * 1e3
        raise AssertionError("unreachable")

    def reject_failed(fb: FormedBatch, now_us: float, exc: Exception) -> None:
        nonlocal batch_failures
        batch_failures += 1
        reason = error_reason(exc)
        for r in fb.requests:
            latency_us = now_us - r.arrival_us
            results[r.request_id] = Rejected(
                request_id=r.request_id,
                finish_us=now_us,
                latency_us=latency_us,
                reason=reason,
            )
            tracer.counter("serve.requests_failed")
            # Keep the EWMA fed on the error path too, matching the
            # live server, so feasibility estimates track incidents.
            admission.observe_service(latency_us)

    # Under a compiled policy the first dispatch of each distinct plan
    # is charged the one-off artifact compilation; warm dispatches of
    # the same plan charge nothing extra (the hot path is lookup +
    # interpreter only).
    policy = config.execution_policy()
    compiled_seen: set[int] = set()

    def compile_charge_us(planned: PlannedBatch) -> float:
        if policy.engine != "compiled":
            return 0.0
        key = id(planned.report.schedule)
        if key in compiled_seen:
            return 0.0
        compiled_seen.add(key)
        tracer.counter("serve.compiles_charged")
        return config.compile_overhead_us

    def dispatch(now_us: float) -> None:
        nonlocal free_workers
        while free_workers > 0 and batch_fifo:
            fb = batch_fifo.popleft()
            try:
                planned, retry_delay_us = plan_with_retry(fb)
            except Exception as exc:
                reject_failed(fb, now_us, exc)
                continue
            free_workers -= 1
            push(
                now_us + retry_delay_us + compile_charge_us(planned)
                + planned.service_us,
                "complete",
                (planned, now_us),
            )

    def form(now_us: float) -> None:
        while True:
            fb = batcher.poll(now_us)
            if fb is None:
                break
            resolve_shed(fb, now_us)
            if fb.requests:
                occupancies.append(fb.occupancy)
                formed_batches.append(fb.to_gemm_batch())
                tracer.histogram("serve.batch_occupancy", fb.occupancy)
                tracer.counter("serve.batches_formed")
                batch_fifo.append(fb)
        dispatch(now_us)

    def complete(planned: PlannedBatch, dispatch_us: float, now_us: float) -> None:
        nonlocal free_workers
        free_workers += 1
        batch_size = planned.formed.occupancy
        for r in planned.formed.requests:
            latency_us = now_us - r.arrival_us
            if r.timeout_us is not None and latency_us > r.timeout_us:
                results[r.request_id] = TimedOut(
                    request_id=r.request_id,
                    finish_us=now_us,
                    latency_us=latency_us,
                    batch_id=planned.formed.batch_id,
                )
                tracer.counter("serve.requests_timeout")
            else:
                results[r.request_id] = Completed(
                    request_id=r.request_id,
                    finish_us=now_us,
                    latency_us=latency_us,
                    batch_id=planned.formed.batch_id,
                    batch_size=batch_size,
                    queue_us=dispatch_us - r.arrival_us,
                    service_us=planned.service_us,
                    deadline_met=r.deadline_us is None or now_us <= r.deadline_us,
                )
                tracer.counter("serve.requests_completed")
                tracer.histogram("serve.latency_us", latency_us)
            admission.observe_service(latency_us)
        dispatch(now_us)

    with tracer.span(
        "serve.replay", requests=len(trace), workers=config.workers
    ) as span:
        while events:
            now_us, _, kind, payload = heapq.heappop(events)
            makespan_us = max(makespan_us, now_us)
            if kind == "arrive":
                req = payload  # type: ignore[assignment]
                tracer.gauge("serve.queue_depth", batcher.pending_count)
                rejection = admission.admit(req, batcher.pending_count, now_us)
                if rejection is not None:
                    results[req.request_id] = rejection
                    tracer.counter("serve.requests_rejected")
                else:
                    batcher.offer(req)
                    tracer.counter("serve.requests_accepted")
                    push(now_us + config.batcher.max_wait_us, "window", None)
                form(now_us)
            elif kind == "window":
                form(now_us)
            else:  # complete
                planned, dispatch_us = payload  # type: ignore[misc]
                complete(planned, dispatch_us, now_us)
        if span.enabled:
            span.set_attr("completed", sum(1 for r in results.values() if r.ok))
            span.set_attr("makespan_us", makespan_us)

    reliability = None
    if injector is not None:
        reliability = {
            "retries": planner_retries,
            "planner_retries": planner_retries,
            "fallbacks": 0,  # replay never executes, so no engine chain
            "bisections": 0,
            "batch_failures": batch_failures,
            "faults_injected": injector.injected_count,
        }
        tracer.counter("serve.retries", planner_retries)
        tracer.counter("faults.injected", injector.injected_count)

    return compile_report(
        results=results,
        occupancies=occupancies,
        makespan_us=makespan_us,
        cache=planner.cache.stats_snapshot(),
        max_batch_size=config.batcher.max_batch_size,
        time_base="virtual",
        formed_batches=formed_batches,
        reliability=reliability,
    )
