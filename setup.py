"""Shim for legacy editable installs in offline environments.

``pip install -e . --no-build-isolation`` needs the ``wheel`` package
for PEP 660 builds; when it is unavailable, this shim lets
``pip install -e . --no-build-isolation --no-use-pep517`` (setuptools
develop mode) work instead.  All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
