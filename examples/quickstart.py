#!/usr/bin/env python
"""Quickstart: plan, time and numerically execute a batched GEMM.

Builds a small variable-size batch (the scenario MAGMA vbatch targets
and this framework improves on), runs the coordinated tiling+batching
planner, inspects the plan, compares simulated execution time against
every baseline, and verifies the numerical result against NumPy.
"""

import numpy as np

from repro import (
    CoordinatedFramework,
    GemmBatch,
    get_device,
    reference_batched_gemm,
    simulate_cke,
    simulate_default,
    simulate_magma_vbatch,
)


def main() -> None:
    device = get_device("v100")
    framework = CoordinatedFramework(device=device)

    # Four small GEMMs of different sizes -- e.g. the branches of a CNN
    # inception module after im2col.
    batch = GemmBatch.from_shapes(
        [(64, 784, 192), (96, 784, 192), (16, 784, 192), (32, 784, 192)]
    )
    print(f"workload: {batch}")
    print()

    # 1. Plan: the tiling engine picks a strategy per GEMM, the
    #    batching engine groups tiles into thread blocks.
    report = framework.plan(batch, heuristic="best")
    print("--- plan ---")
    print(report.summary())
    print()

    # 2. Time it against the baselines on the device model.
    ours = framework.simulate_plan(report)
    rows = [
        ("coordinated framework (ours)", ours.time_us),
        ("MAGMA vbatch", simulate_magma_vbatch(batch, device).time_us),
        ("concurrent kernels (streams)", simulate_cke(batch, device).time_us),
        ("default (serial kernels)", simulate_default(batch, device).time_us),
    ]
    print("--- simulated time on", device.name, "---")
    for name, us in rows:
        print(f"{name:32s} {us:9.1f} us   ({rows[0][1] and us / rows[0][1]:.2f}x ours)")
    print()

    # 3. Execute numerically and check against NumPy.
    rng = np.random.default_rng(0)
    operands = batch.random_operands(rng)
    results = framework.execute(batch, operands, heuristic="best")
    expected = reference_batched_gemm(batch, operands)
    max_err = max(
        float(np.max(np.abs(got.astype(np.float64) - want)))
        for got, want in zip(results, expected)
    )
    print(f"numerical check vs NumPy: max abs error = {max_err:.2e}")
    assert max_err < 1e-2
    print("OK")


if __name__ == "__main__":
    main()
