#!/usr/bin/env python
"""Explore how the framework behaves across GPU architectures.

Runs the paper's Figure 11 protocol on all six modeled devices (the
five from the figure plus the V100), prints per-device speedup
distributions, and shows the offline TLP-threshold calibration curve
(Section 4.2.3) for one device.
"""

from repro import CoordinatedFramework, calibrate_tlp_threshold, get_device, list_devices
from repro.analysis.metrics import summarize_speedups
from repro.analysis.report import format_table
from repro.baselines import simulate_magma_vbatch
from repro.workloads.synthetic import random_cases


def main() -> None:
    cases = random_cases(n_cases=40, seed=0)
    print(f"evaluating {len(cases)} random batched-GEMM cases per device\n")

    rows = []
    for name in list_devices():
        device = get_device(name)
        framework = CoordinatedFramework(device=device)
        speedups = []
        for batch in cases:
            ours = framework.simulate(batch, heuristic="best").time_ms
            magma = simulate_magma_vbatch(batch, device).time_ms
            speedups.append(magma / ours)
        s = summarize_speedups(speedups)
        rows.append(
            [
                name,
                device.architecture,
                device.num_sms,
                round(device.peak_fp32_tflops, 1),
                round(s.geomean, 2),
                f"{s.wins}/{s.count}",
            ]
        )
    print(
        format_table(
            ["device", "arch", "SMs", "peak TFlops", "mean speedup", "wins"],
            rows,
            title="Speedup over MAGMA vbatch per architecture (Figure 11 protocol)",
        )
    )

    print("\n=== TLP-threshold calibration curve (V100) ===")
    cal = calibrate_tlp_threshold(get_device("v100"))
    for p in cal.points:
        frac = p.tflops / cal.plateau_tflops
        bar = "#" * round(frac * 40)
        marker = "  <- threshold" if p.tlp == cal.threshold else ""
        print(f"TLP {p.tlp:8d}: {p.tflops:6.2f} TFlops |{bar}{marker}")
    print(
        f"\ncalibrated threshold {cal.threshold} (the paper sets 65536 on V100 "
        "from the same kind of inflection measurement)"
    )


if __name__ == "__main__":
    main()
