#!/usr/bin/env python
"""Tour of the library's extensions beyond the paper.

1. Future-work batching heuristics (greedy packing, balanced LPT) and
   the ``best-extended`` planning mode.
2. The four-way random-forest selector over all heuristics.
3. Plan caching for repeated workloads (DNN-style reuse).
4. Schedule serialization (persisting plans across processes).
5. FP16 / Tensor-Core pricing (the Volta capability the paper's
   introduction highlights).
6. Implicit-GEMM convolution driven by a framework schedule (the
   paper's Section 7.3 closing remark).
"""

import json

import numpy as np

from repro import CoordinatedFramework, GemmBatch, PlanCache, get_device
from repro.core.schedule import BatchSchedule
from repro.core.selector import train_default_selector
from repro.workloads.synthetic import random_cases


def main() -> None:
    device = get_device("v100")
    fw = CoordinatedFramework(device=device)
    rng = np.random.default_rng(0)

    print("=== 1. extended batching heuristics ===")
    batch = random_cases(n_cases=1, seed=4)[0]
    for h in ("threshold", "binary", "greedy-packing", "balanced"):
        r = fw.simulate(batch, heuristic=h)
        print(f"{h:16s}: {r.time_us:8.1f} us ({r.num_blocks} blocks)")
    ext = fw.plan(batch, heuristic="best-extended")
    print(f"best-extended picks: {ext.heuristic_used}")

    print("\n=== 2. four-way selector ===")
    selector = train_default_selector(
        n_samples=80,
        seed=0,
        heuristics=("threshold", "binary", "greedy-packing", "balanced"),
    )
    auto_fw = CoordinatedFramework(device=device, selector=selector)
    choice = selector.predict(batch)
    print(f"selector chooses {choice!r} for the same batch "
          f"(proba {np.round(selector.predict_proba(batch), 2)})")

    print("\n=== 3. plan cache ===")
    cache = PlanCache(auto_fw, capacity=32)
    training_step_batches = [GemmBatch.uniform(96, 96, 48, 8)] * 5  # reused shapes
    for b in training_step_batches:
        cache.plan(b, heuristic="best")
    print(f"5 planning calls, {cache.stats.misses} planned, "
          f"{cache.stats.hits} served from cache "
          f"(hit rate {cache.stats.hit_rate:.0%})")

    print("\n=== 4. schedule serialization ===")
    report = fw.plan(batch, heuristic="best")
    blob = json.dumps(report.schedule.to_dict())
    rebuilt = BatchSchedule.from_dict(json.loads(blob))
    print(f"schedule -> {len(blob)} bytes of JSON -> "
          f"{rebuilt.num_blocks} blocks, {rebuilt.num_tiles} tiles (round-trip ok)")

    print("\n=== 5. FP16 / Tensor Cores ===")
    from repro.core.problem import Gemm

    huge = GemmBatch([Gemm(5120, 5120, 5120)])
    for precision in ("fp32", "fp16"):
        f = CoordinatedFramework(device=device, precision=precision)
        r = f.simulate(huge, heuristic="one-per-block")
        tflops = huge.total_flops / (r.time_ms * 1e-3) / 1e12
        print(f"{precision}: {tflops:6.1f} TFlops "
              f"(peaks: fp32 {device.peak_fp32_tflops:.0f}, "
              f"fp16 {device.peak_fp16_tflops:.0f})")

    print("\n=== 6. implicit-GEMM convolution through a schedule ===")
    from repro.nn import ConvLayer, conv2d_direct, conv_to_gemm, execute_schedule_implicit

    layers = [
        ConvLayer(f"branch{i}", in_channels=32, out_channels=oc, kernel=1, in_h=8, in_w=8)
        for i, oc in enumerate((16, 24, 8, 12))
    ]
    conv_batch = GemmBatch(conv_to_gemm(l) for l in layers)
    plan = fw.plan(conv_batch, heuristic="best")
    inputs = [rng.standard_normal((32, 8, 8)).astype(np.float32) for _ in layers]
    weights = [
        rng.standard_normal((l.out_channels, 32, 1, 1)).astype(np.float32)
        for l in layers
    ]
    outs = execute_schedule_implicit(plan.schedule, conv_batch, layers, inputs, weights)
    err = max(
        float(np.max(np.abs(o - conv2d_direct(x, w, l))))
        for o, x, w, l in zip(outs, inputs, weights, layers)
    )
    print(f"4 branch convs through one coordinated schedule, "
          f"no materialized im2col: max abs error {err:.2e}")
    assert err < 1e-3
    print("OK")


if __name__ == "__main__":
    main()
