#!/usr/bin/env python
"""The paper's real-world case study: GoogleNet inference.

Times one inference pass (the GEMM-dominated convolution work) under
the four execution modes of Section 7.3, prints the per-inception
breakdown, and reproduces the Figure 10 per-layer comparison against
MAGMA.  Also demonstrates the conv->GEMM path numerically on one
inception branch.
"""

import numpy as np

from repro.gpu.specs import VOLTA_V100
from repro.nn import (
    GOOGLENET_INCEPTIONS,
    conv2d_direct,
    conv2d_im2col,
    inception_layer_speedups,
    simulate_inference,
)


def main() -> None:
    print("=== GoogleNet inference pass on the V100 model ===")
    results = {}
    for mode in ("default", "streams", "magma", "coordinated"):
        results[mode] = simulate_inference(VOLTA_V100, mode=mode)
        print(f"{mode:12s}: {results[mode].total_ms:6.2f} ms")
    ours = results["coordinated"].total_ms
    print(
        f"\nspeedups: {results['default'].total_ms / ours:.2f}x over default "
        f"(paper 1.58x), {results['streams'].total_ms / ours:.2f}x over streams "
        f"(paper 1.20x)"
    )

    print("\n=== per-module breakdown (coordinated mode) ===")
    r = results["coordinated"]
    for name, ms in r.module_ms.items():
        branch = r.branch_gemm_ms[name]
        print(f"{name:12s}: {ms * 1e3:7.1f} us  (branch GEMMs {branch * 1e3:6.1f} us)")

    print("\n=== Figure 10: batched branch GEMMs, ours vs MAGMA ===")
    for name, s in inception_layer_speedups(VOLTA_V100).items():
        bar = "#" * round((s - 1.0) * 20)
        print(f"{name:12s}: {s:4.2f}x |{bar}")

    # Numerical sanity: run inception3a's 5x5reduce conv through the
    # im2col GEMM path and compare with direct convolution.
    module = GOOGLENET_INCEPTIONS[0]
    conv = module.branch_convs()[2]  # 5x5reduce: the paper's example
    print(f"\nnumerical check on {conv.name} "
          f"(GEMM {conv.out_channels}x{conv.out_h * conv.out_w}x{conv.in_channels}):")
    rng = np.random.default_rng(1)
    x = rng.standard_normal((conv.in_channels, conv.in_h, conv.in_w)).astype(np.float32)
    w = rng.standard_normal(
        (conv.out_channels, conv.in_channels, conv.kernel, conv.kernel)
    ).astype(np.float32)
    got = conv2d_im2col(x, w, conv)
    want = conv2d_direct(x, w, conv)
    err = float(np.max(np.abs(got - want)))
    print(f"im2col-GEMM vs direct convolution: max abs error = {err:.2e}")
    assert err < 1e-2
    print("OK")


if __name__ == "__main__":
    main()
