#!/usr/bin/env python
"""Pinned workloads, plan persistence, and CSV export.

Demonstrates the reproducibility tooling: the shipped CNN-fan workload
file, saving/loading custom suites, caching and serializing plans, and
exporting experiment series for external plotting.
"""

import json
import tempfile
from pathlib import Path

from repro import CoordinatedFramework, PlanCache, get_device
from repro.analysis.export import fig_cells_to_csv
from repro.core.schedule import BatchSchedule
from repro.core.validation import validate_schedule
from repro.experiments.fig9_batching import run_fig9
from repro.workloads.io import load_workload, save_workload
from repro.workloads.synthetic import random_cases

DATA = Path(__file__).resolve().parents[1] / "data" / "cnn_fan_gemms.json"


def main() -> None:
    device = get_device("v100")
    fw = CoordinatedFramework(device=device)

    print("=== shipped workload: the 21 CNN fans ===")
    fans = load_workload(DATA)
    print(f"{len(fans)} cases; e.g. googlenet/inception3a = "
          f"{fans['googlenet/inception3a']}")

    with tempfile.TemporaryDirectory() as tmp:
        tmp = Path(tmp)

        print("\n=== pinning a custom evaluation suite ===")
        suite = {f"case{i}": b for i, b in enumerate(random_cases(n_cases=5, seed=42))}
        suite_path = tmp / "my_suite.json"
        save_workload(suite_path, suite, description="five pinned random cases")
        reloaded = load_workload(suite_path)
        assert all(
            [g.shape for g in reloaded[k]] == [g.shape for g in suite[k]] for k in suite
        )
        print(f"saved + reloaded {len(reloaded)} cases "
              f"({suite_path.stat().st_size} bytes)")

        print("\n=== plan persistence ===")
        cache = PlanCache(fw)
        batch = fans["googlenet/inception4a"]
        plan = cache.plan(batch, heuristic="best")
        plan_path = tmp / "inception4a_plan.json"
        plan_path.write_text(json.dumps(plan.schedule.to_dict()))
        rebuilt = BatchSchedule.from_dict(json.loads(plan_path.read_text()))
        report = validate_schedule(rebuilt, batch)
        print(f"plan -> {plan_path.stat().st_size} bytes; "
              f"validator says ok={report.ok} "
              f"({len(report.warnings)} warnings)")

        print("\n=== exporting a figure's series as CSV ===")
        cells = run_fig9(batch_sizes=(4, 16), mn_values=(128,), k_values=(16, 64, 256))
        csv_path = tmp / "fig9_slice.csv"
        fig_cells_to_csv(csv_path, cells)
        print(csv_path.read_text().splitlines()[0])
        print(f"... {len(cells)} data rows written")
    print("\nOK")


if __name__ == "__main__":
    main()
