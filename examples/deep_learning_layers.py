#!/usr/bin/env python
"""Batched GEMM for deep-learning layer shapes.

Sweeps CNN-flavoured workloads (small filter counts, square feature
maps, channel-product K) and shows where each execution strategy wins:
the coordinated framework dominates the small-matrix regime the paper
motivates, while everything converges for large dense GEMMs.
"""

from repro import CoordinatedFramework, GemmBatch, get_device, simulate_magma_vbatch
from repro.analysis.metrics import achieved_tflops, geomean
from repro.analysis.report import format_table
from repro.baselines import simulate_cke, simulate_default
from repro.workloads.synthetic import deep_learning_like_cases


def main() -> None:
    device = get_device("v100")
    framework = CoordinatedFramework(device=device)

    print("=== CNN-branch workloads (random inception-like batches) ===")
    rows = []
    speedups = []
    for i, batch in enumerate(deep_learning_like_cases(seed=7, n_cases=8)):
        plan = framework.plan(batch, heuristic="best")
        ours = framework.simulate_plan(plan)
        magma = simulate_magma_vbatch(batch, device)
        speedup = magma.time_ms / ours.time_ms
        speedups.append(speedup)
        rows.append(
            [
                f"case{i} (B={len(batch)}, N={batch[0].n}, K={batch[0].k})",
                round(ours.time_us, 1),
                round(magma.time_us, 1),
                round(speedup, 2),
                plan.heuristic_used,
                round(achieved_tflops(batch, ours.time_ms), 2),
            ]
        )
    print(
        format_table(
            ["workload", "ours (us)", "magma (us)", "speedup", "heuristic", "TFlops"],
            rows,
        )
    )
    print(f"\ngeomean speedup over MAGMA: {geomean(speedups):.2f}x")

    print("\n=== the regimes, side by side ===")
    regimes = {
        "tiny batch of tiny GEMMs": GemmBatch.uniform(32, 32, 32, 4),
        "many small GEMMs": GemmBatch.uniform(64, 64, 48, 48),
        "one large dense GEMM": GemmBatch.uniform(2048, 2048, 2048, 1),
    }
    rows = []
    for name, batch in regimes.items():
        ours = framework.simulate(batch, heuristic="best").time_us
        magma = simulate_magma_vbatch(batch, device).time_us
        default = simulate_default(batch, device).time_us
        cke = simulate_cke(batch, device).time_us
        rows.append([name, round(ours, 1), round(magma, 1), round(cke, 1), round(default, 1)])
    print(
        format_table(
            ["regime", "ours (us)", "magma (us)", "streams (us)", "default (us)"], rows
        )
    )
    print(
        "\nNote how the framework's edge concentrates exactly where the paper "
        "says: small matrices, moderate batches."
    )


if __name__ == "__main__":
    main()
