#!/usr/bin/env python
"""Train and inspect the online batching-heuristic selector.

Reproduces the paper's Section 5 procedure: generate random batched
cases, time both heuristics on the device model, label each case with
the winner, fit a random forest on (mean M, mean N, mean K, B), and
evaluate its holdout accuracy and decision cost.
"""

import numpy as np

from repro.core.framework import CoordinatedFramework
from repro.core.selector import HEURISTIC_LABELS, HeuristicSelector
from repro.gpu.specs import VOLTA_V100
from repro.ml.random_forest import RandomForestClassifier
from repro.ml.training import generate_training_set, random_batch


def main() -> None:
    device = VOLTA_V100

    print("generating training set (paper: >400 samples)...")
    x_train, y_train, samples = generate_training_set(device, n_samples=220, seed=0)
    wins = np.bincount(y_train, minlength=2)
    print(
        f"labels: threshold wins {wins[0]}, binary wins {wins[1]} "
        f"(neither heuristic dominates -- the selection problem is real)"
    )

    forest = RandomForestClassifier(n_estimators=16, max_depth=8, seed=0)
    forest.fit(x_train, y_train)
    selector = HeuristicSelector(forest=forest)

    x_test, y_test, _ = generate_training_set(device, n_samples=80, seed=99)
    majority = max(np.mean(y_test == 0), np.mean(y_test == 1))
    accuracy = forest.score(x_test, y_test)
    print(f"holdout accuracy: {accuracy:.1%} (majority baseline {majority:.1%})")

    rng = np.random.default_rng(5)
    probes = [random_batch(rng) for _ in range(50)]
    print(
        f"decision cost: {selector.mean_comparisons(probes):.1f} comparisons "
        "per tree per prediction (paper quotes 7-8)"
    )

    # What did the forest learn? Probe the policy surface along K.
    print("\npolicy surface (B=16, M=N=128, sweeping K):")
    from repro.core.problem import GemmBatch

    for k in (16, 32, 64, 128, 256, 512, 1024):
        batch = GemmBatch.uniform(128, 128, k, 16)
        proba = selector.predict_proba(batch)
        choice = selector.predict(batch)
        print(
            f"  K={k:5d}: p(threshold)={proba[0]:.2f} p(binary)={proba[1]:.2f}"
            f"  -> {choice}"
        )

    # Close the loop: drive the framework in auto mode.
    fw = CoordinatedFramework(device=device, selector=selector)
    regret = []
    for batch in probes[:20]:
        auto_ms = fw.simulate(batch, heuristic="auto").time_ms
        best_ms = fw.simulate(batch, heuristic="best").time_ms
        regret.append(auto_ms / best_ms)
    print(
        f"\nauto-mode regret vs exhaustive best on 20 fresh cases: "
        f"mean {np.mean(regret):.3f}x (1.0 = always picked the winner)"
    )
    assert set(HEURISTIC_LABELS) == {"threshold", "binary"}


if __name__ == "__main__":
    main()
